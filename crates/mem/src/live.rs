//! Tracking of *interesting* memory locations.
//!
//! The paper considers a location interesting if it "has been referenced
//! (i.e., read or written) at some point in the program and has not been
//! deallocated since". [`LiveSet`] implements exactly that: a bit per word,
//! set on reference and cleared when the containing region is freed.

use crate::layout::{Addr, Region, WORD_BYTES};
use std::collections::HashMap;
use std::fmt;

const PAGE_WORDS: usize = 1024;
const WORDS_PER_LIMB: usize = 64;
const LIMBS: usize = PAGE_WORDS / WORDS_PER_LIMB;
const PAGE_SHIFT: u32 = 12;

type Bitmap = [u64; LIMBS];

/// A set of word addresses that are currently *interesting*: referenced at
/// least once and not deallocated since.
///
/// # Example
///
/// ```
/// use fvl_mem::{LiveSet, Region, RegionKind};
///
/// let mut live = LiveSet::new();
/// live.mark(0x1000);
/// assert!(live.contains(0x1000));
/// live.clear_region(&Region::new(0x1000, 1, RegionKind::Heap));
/// assert!(!live.contains(0x1000));
/// ```
#[derive(Clone, Default)]
pub struct LiveSet {
    pages: HashMap<u32, Box<Bitmap>>,
    len: u64,
}

impl LiveSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn split(addr: Addr) -> (u32, usize, u64) {
        debug_assert_eq!(addr % WORD_BYTES, 0);
        let page = addr >> PAGE_SHIFT;
        let word = ((addr >> 2) as usize) & (PAGE_WORDS - 1);
        (page, word / WORDS_PER_LIMB, 1u64 << (word % WORDS_PER_LIMB))
    }

    /// Marks the word at `addr` as referenced.
    #[inline]
    pub fn mark(&mut self, addr: Addr) {
        let (page, limb, bit) = Self::split(addr);
        let bm = self
            .pages
            .entry(page)
            .or_insert_with(|| Box::new([0; LIMBS]));
        if bm[limb] & bit == 0 {
            bm[limb] |= bit;
            self.len += 1;
        }
    }

    /// Whether the word at `addr` is currently interesting.
    #[inline]
    pub fn contains(&self, addr: Addr) -> bool {
        let (page, limb, bit) = Self::split(addr);
        self.pages.get(&page).is_some_and(|bm| bm[limb] & bit != 0)
    }

    /// Clears every word covered by `region` (deallocation).
    pub fn clear_region(&mut self, region: &Region) {
        for addr in region.word_addrs() {
            let (page, limb, bit) = Self::split(addr);
            if let Some(bm) = self.pages.get_mut(&page) {
                if bm[limb] & bit != 0 {
                    bm[limb] &= !bit;
                    self.len -= 1;
                }
            }
        }
    }

    /// Number of interesting words.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether no word is interesting.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over all interesting word addresses, in ascending page
    /// order is *not* guaranteed (pages hash-ordered); use
    /// [`LiveSet::iter_sorted`] when deterministic order matters.
    pub fn iter(&self) -> impl Iterator<Item = Addr> + '_ {
        self.pages.iter().flat_map(|(&page, bm)| {
            let base = page << PAGE_SHIFT;
            bm.iter().enumerate().flat_map(move |(limb, &bits)| {
                BitIter(bits).map(move |b| base + (((limb * WORDS_PER_LIMB + b) as u32) << 2))
            })
        })
    }

    /// Iterates over all interesting word addresses in ascending order.
    pub fn iter_sorted(&self) -> impl Iterator<Item = Addr> + '_ {
        let mut pages: Vec<_> = self.pages.iter().collect();
        pages.sort_by_key(|(&page, _)| page);
        pages.into_iter().flat_map(|(&page, bm)| {
            let base = page << PAGE_SHIFT;
            bm.iter().enumerate().flat_map(move |(limb, &bits)| {
                BitIter(bits).map(move |b| base + (((limb * WORDS_PER_LIMB + b) as u32) << 2))
            })
        })
    }
}

impl fmt::Debug for LiveSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LiveSet").field("len", &self.len).finish()
    }
}

struct BitIter(u64);

impl Iterator for BitIter {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            let b = self.0.trailing_zeros() as usize;
            self.0 &= self.0 - 1;
            Some(b)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::RegionKind;

    #[test]
    fn mark_and_contains() {
        let mut s = LiveSet::new();
        assert!(s.is_empty());
        s.mark(0x100);
        s.mark(0x100); // idempotent
        s.mark(0x2000);
        assert_eq!(s.len(), 2);
        assert!(s.contains(0x100));
        assert!(s.contains(0x2000));
        assert!(!s.contains(0x104));
    }

    #[test]
    fn clear_region_removes_exactly_covered_words() {
        let mut s = LiveSet::new();
        for a in [0x100u32, 0x104, 0x108, 0x10c, 0x110] {
            s.mark(a);
        }
        s.clear_region(&Region::new(0x104, 3, RegionKind::Heap));
        assert!(s.contains(0x100));
        assert!(!s.contains(0x104));
        assert!(!s.contains(0x108));
        assert!(!s.contains(0x10c));
        assert!(s.contains(0x110));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn clear_unmarked_is_noop() {
        let mut s = LiveSet::new();
        s.mark(0x100);
        s.clear_region(&Region::new(0x2000, 8, RegionKind::Stack));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn iter_sorted_yields_all_marks_in_order() {
        let mut s = LiveSet::new();
        let addrs = [0x5000u32, 0x100, 0x0, 0x1ffc, 0x2000, 0xffff_fffc];
        for &a in &addrs {
            s.mark(a);
        }
        let got: Vec<_> = s.iter_sorted().collect();
        let mut want = addrs.to_vec();
        want.sort_unstable();
        assert_eq!(got, want);
        assert_eq!(s.iter().count() as u64, s.len());
    }

    #[test]
    fn remark_after_clear_counts_again() {
        let mut s = LiveSet::new();
        s.mark(0x100);
        s.clear_region(&Region::new(0x100, 1, RegionKind::Heap));
        assert!(s.is_empty());
        s.mark(0x100);
        assert_eq!(s.len(), 1);
    }
}
