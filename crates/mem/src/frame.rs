//! Length-prefixed wire frames for the `fvl-serve` protocol.
//!
//! The simulation service (`crates/serve`) and its clients exchange a
//! byte stream of *frames*. The codec lives here, next to the trace
//! readers, because the same validation discipline applies: every
//! length field in the header is checked against a hard ceiling
//! **before** it is allowed to size an allocation, and payload bytes
//! are buffered incrementally as they actually arrive, so a hostile
//! header announcing `u64::MAX` (or `2^32`) bytes is rejected with a
//! typed error without reserving a single byte for it.
//!
//! # Frame grammar
//!
//! ```text
//! frame   := kind seq len payload
//! kind    := u8          (one of FrameKind; anything else fails closed)
//! seq     := u32 LE      (per-direction counter, starts at 0, +1 per frame)
//! len     := u64 LE      (payload byte count; must be <= MAX_FRAME_LEN)
//! payload := len bytes   (frame-kind-specific)
//! ```
//!
//! The sequence number makes response-stream faults *observable*: a
//! dropped frame leaves a gap, a duplicated frame repeats a number, a
//! reordered frame arrives out of order — the fault-injection tests in
//! `crates/serve` rely on exactly this. Sequence checking is the
//! *connection's* job (the codec only carries the number), because the
//! counter is per-direction state.
//!
//! Trace payloads ([`FrameKind::Trace`]) carry a complete trace file in
//! any on-disk format this crate can read (FVLTRC1/2/2.1/2.2); the
//! receiver revalidates them with the normal sniffing readers, so a
//! frame that survives the codec can still be rejected as a bad trace.
//!
//! # Example
//!
//! ```
//! use fvl_mem::frame::{read_frame, write_frame, Frame, FrameKind};
//!
//! let mut wire = Vec::new();
//! write_frame(&mut wire, FrameKind::Hello, 0, b"tenant=ci").unwrap();
//! let frame = read_frame(&mut wire.as_slice()).unwrap();
//! assert_eq!(frame.kind, FrameKind::Hello);
//! assert_eq!(frame.seq, 0);
//! assert_eq!(frame.payload, b"tenant=ci");
//! ```

use std::fmt;
use std::io::{self, Read, Write};

/// Hard ceiling on a frame payload (16 MiB). Anything larger is a
/// protocol violation answered with [`ErrorCode::TooLarge`]; the limit
/// exists so no untrusted length field can size an allocation.
pub const MAX_FRAME_LEN: u64 = 16 * 1024 * 1024;

/// Bytes of a frame header: kind (1) + seq (4) + len (8).
pub const FRAME_HEADER_LEN: usize = 13;

/// Largest single buffer growth while reading a payload. The payload
/// buffer grows in steps of at most this many bytes, each step filled
/// from the wire before the next is reserved, so memory held for a
/// connection is bounded by bytes actually received (plus one step).
pub const PAYLOAD_READ_STEP: usize = 64 * 1024;

/// Frame kinds. Client-originated kinds live below `0x80`,
/// server-originated kinds at `0x80` and above; an unknown kind byte
/// fails the connection closed with [`ErrorCode::BadFrame`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Client → server: opens a session. Payload: `key=value` lines
    /// (`tenant`, `input`, `seed`, `smoke`).
    Hello = 0x01,
    /// Client → server: run one named experiment. Payload: the
    /// experiment name (e.g. `fig10`).
    Job = 0x02,
    /// Client → server: upload a trace file (any FVLTRC format the
    /// sniffing readers accept). Payload: the file bytes.
    Trace = 0x03,
    /// Client → server: simulate the uploaded trace. Payload:
    /// `key=value` lines (`size`, `line`, `assoc`, `write`, `policy`).
    Sim = 0x04,
    /// Client → server: request the session metrics document.
    /// Payload: `json` or `csv`.
    MetricsReq = 0x05,
    /// Client → server: orderly goodbye.
    Bye = 0x06,
    /// Server → client: session accepted. Payload: `key=value` lines
    /// (`session`, `budget`).
    Welcome = 0x81,
    /// Server → client: one chunk of an experiment report (stdout
    /// bytes, streamed in order).
    Stdout = 0x82,
    /// Server → client: a schema-v1 metrics document (JSON or CSV,
    /// matching the request or the per-job incremental push).
    Metrics = 0x83,
    /// Server → client: a job/upload finished. Payload: `key=value`
    /// lines (`refs`, `accesses`).
    Done = 0x84,
    /// Server → client: result of a [`FrameKind::Sim`] request.
    /// Payload: `key=value` lines of counters.
    SimResult = 0x85,
    /// Server → client: typed rejection. Payload: one [`ErrorCode`]
    /// byte followed by a UTF-8 message.
    Error = 0x86,
}

impl FrameKind {
    /// Decodes a kind byte, `None` for anything off-grammar.
    pub fn from_byte(byte: u8) -> Option<FrameKind> {
        Some(match byte {
            0x01 => FrameKind::Hello,
            0x02 => FrameKind::Job,
            0x03 => FrameKind::Trace,
            0x04 => FrameKind::Sim,
            0x05 => FrameKind::MetricsReq,
            0x06 => FrameKind::Bye,
            0x81 => FrameKind::Welcome,
            0x82 => FrameKind::Stdout,
            0x83 => FrameKind::Metrics,
            0x84 => FrameKind::Done,
            0x85 => FrameKind::SimResult,
            0x86 => FrameKind::Error,
            _ => return None,
        })
    }
}

/// Typed rejection codes carried in the first byte of an
/// [`FrameKind::Error`] payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The byte stream violated the frame grammar (bad kind byte,
    /// truncated header/payload, malformed payload).
    BadFrame = 1,
    /// A length field exceeded [`MAX_FRAME_LEN`].
    TooLarge = 2,
    /// Admission control: the daemon (or the tenant) is at its
    /// concurrent-session cap.
    Busy = 3,
    /// Admission control: the tenant's reference budget is exhausted.
    OverBudget = 4,
    /// The connection idled past the server's read/idle timeout.
    Timeout = 5,
    /// The requested experiment name is not in the registry.
    UnknownJob = 6,
    /// The daemon is draining (SIGTERM); no new work is admitted.
    Draining = 7,
    /// A [`FrameKind::Trace`] payload failed trace validation.
    BadTrace = 8,
    /// A frame arrived in the wrong session state (e.g. a job before
    /// the hello handshake).
    BadState = 9,
}

impl ErrorCode {
    /// Decodes a code byte, `None` for anything off-grammar.
    pub fn from_byte(byte: u8) -> Option<ErrorCode> {
        Some(match byte {
            1 => ErrorCode::BadFrame,
            2 => ErrorCode::TooLarge,
            3 => ErrorCode::Busy,
            4 => ErrorCode::OverBudget,
            5 => ErrorCode::Timeout,
            6 => ErrorCode::UnknownJob,
            7 => ErrorCode::Draining,
            8 => ErrorCode::BadTrace,
            9 => ErrorCode::BadState,
            _ => return None,
        })
    }

    /// Stable lower-case label (used in logs and test assertions).
    pub fn label(self) -> &'static str {
        match self {
            ErrorCode::BadFrame => "bad-frame",
            ErrorCode::TooLarge => "too-large",
            ErrorCode::Busy => "busy",
            ErrorCode::OverBudget => "over-budget",
            ErrorCode::Timeout => "timeout",
            ErrorCode::UnknownJob => "unknown-job",
            ErrorCode::Draining => "draining",
            ErrorCode::BadTrace => "bad-trace",
            ErrorCode::BadState => "bad-state",
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One decoded frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// What the frame is.
    pub kind: FrameKind,
    /// Per-direction sequence number.
    pub seq: u32,
    /// Kind-specific payload bytes.
    pub payload: Vec<u8>,
}

impl Frame {
    /// Parses an [`FrameKind::Error`] payload into its code and
    /// message. Returns `None` when the frame is not an error frame or
    /// the payload is off-grammar.
    pub fn as_error(&self) -> Option<(ErrorCode, String)> {
        if self.kind != FrameKind::Error {
            return None;
        }
        let (&code, msg) = self.payload.split_first()?;
        Some((
            ErrorCode::from_byte(code)?,
            String::from_utf8_lossy(msg).into_owned(),
        ))
    }
}

/// Writes one frame. `seq` is the sender's per-direction counter.
///
/// # Errors
///
/// Fails when the payload exceeds [`MAX_FRAME_LEN`] (callers chunk
/// large streams) or on any underlying I/O error.
pub fn write_frame<W: Write>(
    mut writer: W,
    kind: FrameKind,
    seq: u32,
    payload: &[u8],
) -> io::Result<()> {
    let len = payload.len() as u64;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame payload of {len} bytes exceeds MAX_FRAME_LEN"),
        ));
    }
    let mut header = [0u8; FRAME_HEADER_LEN];
    header[0] = kind as u8;
    header[1..5].copy_from_slice(&seq.to_le_bytes());
    header[5..13].copy_from_slice(&len.to_le_bytes());
    writer.write_all(&header)?;
    writer.write_all(payload)?;
    writer.flush()
}

/// Convenience: writes an [`FrameKind::Error`] frame.
///
/// # Errors
///
/// Propagates I/O errors from [`write_frame`].
pub fn write_error<W: Write>(writer: W, seq: u32, code: ErrorCode, msg: &str) -> io::Result<()> {
    let mut payload = Vec::with_capacity(1 + msg.len());
    payload.push(code as u8);
    payload.extend_from_slice(msg.as_bytes());
    write_frame(writer, FrameKind::Error, seq, &payload)
}

/// How a frame read failed, split so connections can answer with the
/// right [`ErrorCode`] before failing closed.
#[derive(Debug)]
pub enum FrameReadError {
    /// The peer closed the connection cleanly *between* frames.
    Closed,
    /// The header's length field exceeded [`MAX_FRAME_LEN`]. Carries
    /// the hostile value; **no allocation was sized from it**.
    TooLarge(u64),
    /// The header's kind byte is not in the grammar.
    BadKind(u8),
    /// The stream ended inside a header or payload, or another I/O
    /// error occurred (including read timeouts).
    Io(io::Error),
}

impl fmt::Display for FrameReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameReadError::Closed => write!(f, "connection closed"),
            FrameReadError::TooLarge(len) => {
                write!(f, "declared payload of {len} bytes exceeds MAX_FRAME_LEN")
            }
            FrameReadError::BadKind(byte) => write!(f, "unknown frame kind byte {byte:#04x}"),
            FrameReadError::Io(err) => write!(f, "frame read failed: {err}"),
        }
    }
}

impl std::error::Error for FrameReadError {}

impl From<FrameReadError> for io::Error {
    fn from(err: FrameReadError) -> io::Error {
        match err {
            FrameReadError::Io(io) => io,
            FrameReadError::Closed => io::Error::new(io::ErrorKind::UnexpectedEof, err.to_string()),
            other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

/// Reads one frame, validating everything the header claims before
/// acting on it.
///
/// The declared payload length is compared against [`MAX_FRAME_LEN`]
/// **before** any buffer is sized from it, and the payload buffer then
/// grows in [`PAYLOAD_READ_STEP`] increments, each filled from the
/// wire before the next is reserved — a peer that declares a large
/// length but never sends the bytes holds at most one step of memory.
///
/// # Errors
///
/// [`FrameReadError::Closed`] on clean EOF between frames; the other
/// variants as documented on [`FrameReadError`].
pub fn read_frame<R: Read>(mut reader: R) -> Result<Frame, FrameReadError> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    // Distinguish "closed between frames" from "died mid-header".
    match reader.read(&mut header) {
        Ok(0) => return Err(FrameReadError::Closed),
        Ok(n) => reader
            .read_exact(&mut header[n..])
            .map_err(FrameReadError::Io)?,
        Err(err) => return Err(FrameReadError::Io(err)),
    }
    let kind = FrameKind::from_byte(header[0]).ok_or(FrameReadError::BadKind(header[0]))?;
    let seq = u32::from_le_bytes(header[1..5].try_into().expect("4 bytes"));
    let declared = u64::from_le_bytes(header[5..13].try_into().expect("8 bytes"));
    if declared > MAX_FRAME_LEN {
        return Err(FrameReadError::TooLarge(declared));
    }
    // `seeded-bugs` is the TEST-ONLY mutation switch used by the
    // `fvl-check` mutation smoke tier: an off-by-one in the trusted
    // length desynchronizes the stream (every non-empty payload loses
    // its last byte to the next frame's header), which `diff_serve`
    // must catch. Never enabled in a normal build.
    #[cfg(feature = "seeded-bugs")]
    let declared = declared.saturating_sub(1);
    let len = declared as usize;
    let mut payload = Vec::new();
    while payload.len() < len {
        let step = (len - payload.len()).min(PAYLOAD_READ_STEP);
        let start = payload.len();
        payload.resize(start + step, 0);
        reader
            .read_exact(&mut payload[start..])
            .map_err(FrameReadError::Io)?;
    }
    Ok(Frame { kind, seq, payload })
}

/// Parses a `key=value`-lines payload (the convention used by hello,
/// welcome, done and sim frames). Later duplicates win; lines without
/// `=` are ignored.
pub fn parse_kv(payload: &[u8]) -> Vec<(String, String)> {
    let text = String::from_utf8_lossy(payload);
    text.lines()
        .filter_map(|line| {
            let (k, v) = line.split_once('=')?;
            Some((k.trim().to_string(), v.trim().to_string()))
        })
        .collect()
}

/// Looks up one key in a [`parse_kv`] result.
pub fn kv_get<'a>(kv: &'a [(String, String)], key: &str) -> Option<&'a str> {
    kv.iter()
        .rev()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg_attr(feature = "seeded-bugs", allow(dead_code))]
    fn wire(kind: FrameKind, seq: u32, payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        write_frame(&mut out, kind, seq, payload).unwrap();
        out
    }

    #[cfg(not(feature = "seeded-bugs"))]
    #[test]
    fn round_trips_every_kind() {
        for (i, kind) in [
            FrameKind::Hello,
            FrameKind::Job,
            FrameKind::Trace,
            FrameKind::Sim,
            FrameKind::MetricsReq,
            FrameKind::Bye,
            FrameKind::Welcome,
            FrameKind::Stdout,
            FrameKind::Metrics,
            FrameKind::Done,
            FrameKind::SimResult,
            FrameKind::Error,
        ]
        .into_iter()
        .enumerate()
        {
            let payload = vec![i as u8; i * 37];
            let bytes = wire(kind, i as u32, &payload);
            let frame = read_frame(&mut bytes.as_slice()).unwrap();
            assert_eq!((frame.kind, frame.seq), (kind, i as u32));
            assert_eq!(frame.payload, payload);
        }
    }

    #[cfg(not(feature = "seeded-bugs"))]
    #[test]
    fn consecutive_frames_parse_in_order() {
        let mut bytes = wire(FrameKind::Hello, 0, b"tenant=a");
        bytes.extend(wire(FrameKind::Job, 1, b"fig1"));
        let mut cursor = bytes.as_slice();
        let first = read_frame(&mut cursor).unwrap();
        let second = read_frame(&mut cursor).unwrap();
        assert_eq!(first.kind, FrameKind::Hello);
        assert_eq!(second.kind, FrameKind::Job);
        assert_eq!(second.payload, b"fig1");
        assert!(matches!(
            read_frame(&mut cursor),
            Err(FrameReadError::Closed)
        ));
    }

    #[test]
    fn hostile_lengths_are_rejected_without_allocating() {
        for hostile in [u64::MAX, 1 << 32, MAX_FRAME_LEN + 1] {
            let mut header = [0u8; FRAME_HEADER_LEN];
            header[0] = FrameKind::Hello as u8;
            header[5..13].copy_from_slice(&hostile.to_le_bytes());
            match read_frame(&mut header.as_slice()) {
                Err(FrameReadError::TooLarge(len)) => assert_eq!(len, hostile),
                other => panic!("hostile length {hostile} accepted: {other:?}"),
            }
        }
    }

    #[test]
    fn unknown_kind_fails_closed() {
        for byte in [0x00u8, 0x07, 0x42, 0x80, 0x87, 0xff] {
            let mut header = [0u8; FRAME_HEADER_LEN];
            header[0] = byte;
            match read_frame(&mut header.as_slice()) {
                Err(FrameReadError::BadKind(b)) => assert_eq!(b, byte),
                other => panic!("kind byte {byte:#04x} accepted: {other:?}"),
            }
        }
    }

    #[cfg(not(feature = "seeded-bugs"))]
    #[test]
    fn every_strict_prefix_fails_cleanly() {
        let bytes = wire(FrameKind::Trace, 9, &vec![0xabu8; 300]);
        for cut in 0..bytes.len() {
            match read_frame(&mut &bytes[..cut]) {
                Err(FrameReadError::Closed) => assert_eq!(cut, 0),
                Err(FrameReadError::Io(err)) => {
                    assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut at {cut}")
                }
                other => panic!("prefix of {cut} bytes parsed: {other:?}"),
            }
        }
        assert!(read_frame(&mut bytes.as_slice()).is_ok());
    }

    #[test]
    fn oversized_writes_are_refused() {
        let payload = vec![0u8; MAX_FRAME_LEN as usize + 1];
        let err = write_frame(std::io::sink(), FrameKind::Trace, 0, &payload).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(write_frame(std::io::sink(), FrameKind::Trace, 0, &payload[..1]).is_ok());
    }

    #[test]
    fn error_frames_carry_typed_codes() {
        let mut bytes = Vec::new();
        write_error(&mut bytes, 3, ErrorCode::OverBudget, "tenant ci exhausted").unwrap();
        let frame = read_frame(&mut bytes.as_slice()).unwrap();
        #[cfg(not(feature = "seeded-bugs"))]
        {
            let (code, msg) = frame.as_error().expect("error payload");
            assert_eq!(code, ErrorCode::OverBudget);
            assert_eq!(msg, "tenant ci exhausted");
        }
        assert_eq!(frame.kind, FrameKind::Error);
    }

    #[test]
    fn kv_payloads_parse() {
        let kv = parse_kv(b"tenant=ci\ninput=test\nseed=7\nsmoke=1\nnoise\n");
        assert_eq!(kv_get(&kv, "tenant"), Some("ci"));
        assert_eq!(kv_get(&kv, "seed"), Some("7"));
        assert_eq!(kv_get(&kv, "missing"), None);
    }

    #[test]
    fn codes_round_trip() {
        for code in [
            ErrorCode::BadFrame,
            ErrorCode::TooLarge,
            ErrorCode::Busy,
            ErrorCode::OverBudget,
            ErrorCode::Timeout,
            ErrorCode::UnknownJob,
            ErrorCode::Draining,
            ErrorCode::BadTrace,
            ErrorCode::BadState,
        ] {
            assert_eq!(ErrorCode::from_byte(code as u8), Some(code));
            assert!(!code.label().is_empty());
        }
        assert_eq!(ErrorCode::from_byte(0), None);
        assert_eq!(ErrorCode::from_byte(200), None);
    }
}
