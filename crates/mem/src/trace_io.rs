//! Binary serialization of traces.
//!
//! Recorded traces can be written to disk and replayed later, so an
//! expensive workload execution (or an externally collected trace) can
//! drive many simulation campaigns. Two little-endian formats exist,
//! both dependency-free and distinguished by their magic header:
//!
//! * `FVLTRC1` — the original per-event record stream (tag byte plus
//!   fields per event). Still written by [`Trace::write_to`] so
//!   existing tooling and archived traces keep working.
//! * `FVLTRC2` — the columnar format written by
//!   [`PackedTrace::write_to`]: one header, the packed address column,
//!   the value column, then the region-event side table. Roughly half
//!   the bytes of v1 for access-dominated traces, and decoding is two
//!   bulk column reads instead of per-event tag dispatch.
//!
//! Both [`Trace::read_from`] and [`PackedTrace::read_from`] sniff the
//! magic and accept **either** format, converting as needed — old v1
//! files load into packed pipelines and new v2 files load into legacy
//! ones.
//!
//! All encoding goes through an explicit chunk buffer
//! ([`CHUNK_BYTES`]-sized `write_all` calls instead of one syscall-ish
//! write per field) and reads mirror that chunking.

use crate::access::{Access, AccessKind};
use crate::layout::{Region, RegionKind};
use crate::packed::{PackedTrace, RegionEvent};
use crate::trace::{Trace, TraceEvent};
use std::io::{self, Read, Write};

const MAGIC_V1: &[u8; 8] = b"FVLTRC1\n";
const MAGIC_V2: &[u8; 8] = b"FVLTRC2\n";

/// Size of the encode/decode staging buffer: every `write_all` to the
/// underlying writer (and every `read` from the underlying reader)
/// moves about this many bytes, not one field's worth.
pub const CHUNK_BYTES: usize = 64 * 1024;

const TAG_LOAD: u8 = 0;
const TAG_STORE: u8 = 1;
const TAG_ALLOC: u8 = 2;
const TAG_FREE: u8 = 3;

/// Bytes per v2 region-event record: u64 pos + u8 is_alloc + u8 kind +
/// u32 base + u32 words.
const REGION_RECORD_BYTES: usize = 18;

fn kind_to_byte(kind: RegionKind) -> u8 {
    match kind {
        RegionKind::Global => 0,
        RegionKind::Heap => 1,
        RegionKind::Stack => 2,
    }
}

fn byte_to_kind(b: u8) -> io::Result<RegionKind> {
    match b {
        0 => Ok(RegionKind::Global),
        1 => Ok(RegionKind::Heap),
        2 => Ok(RegionKind::Stack),
        other => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad region kind byte {other}"),
        )),
    }
}

fn bad_data(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Accumulates encoded bytes and flushes them to the underlying writer
/// one [`CHUNK_BYTES`] block at a time.
struct ChunkedWriter<W: Write> {
    writer: W,
    buf: Vec<u8>,
}

impl<W: Write> ChunkedWriter<W> {
    fn new(writer: W) -> Self {
        ChunkedWriter {
            writer,
            buf: Vec::with_capacity(CHUNK_BYTES),
        }
    }

    #[inline]
    fn put(&mut self, bytes: &[u8]) -> io::Result<()> {
        if self.buf.len() + bytes.len() > CHUNK_BYTES {
            self.flush()?;
            if bytes.len() >= CHUNK_BYTES {
                // Oversized payloads go straight through.
                return self.writer.write_all(bytes);
            }
        }
        self.buf.extend_from_slice(bytes);
        Ok(())
    }

    #[inline]
    fn put_u32(&mut self, v: u32) -> io::Result<()> {
        self.put(&v.to_le_bytes())
    }

    #[inline]
    fn put_u64(&mut self, v: u64) -> io::Result<()> {
        self.put(&v.to_le_bytes())
    }

    fn flush(&mut self) -> io::Result<()> {
        if !self.buf.is_empty() {
            self.writer.write_all(&self.buf)?;
            self.buf.clear();
        }
        Ok(())
    }

    fn finish(mut self) -> io::Result<()> {
        self.flush()
    }
}

/// Mirror of [`ChunkedWriter`] for decoding: refills a
/// [`CHUNK_BYTES`] staging buffer from the underlying reader and hands
/// out exact-sized slices from it.
struct ChunkedReader<R: Read> {
    reader: R,
    buf: Vec<u8>,
    pos: usize,
    len: usize,
}

impl<R: Read> ChunkedReader<R> {
    fn new(reader: R) -> Self {
        ChunkedReader {
            reader,
            buf: vec![0u8; CHUNK_BYTES],
            pos: 0,
            len: 0,
        }
    }

    fn take(&mut self, out: &mut [u8]) -> io::Result<()> {
        let mut filled = 0;
        while filled < out.len() {
            if self.pos == self.len {
                self.len = self.reader.read(&mut self.buf)?;
                self.pos = 0;
                if self.len == 0 {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "trace stream truncated",
                    ));
                }
            }
            let n = (out.len() - filled).min(self.len - self.pos);
            out[filled..filled + n].copy_from_slice(&self.buf[self.pos..self.pos + n]);
            self.pos += n;
            filled += n;
        }
        Ok(())
    }

    #[inline]
    fn take_u32(&mut self) -> io::Result<u32> {
        let mut b = [0u8; 4];
        self.take(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    #[inline]
    fn take_u64(&mut self) -> io::Result<u64> {
        let mut b = [0u8; 8];
        self.take(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    #[inline]
    fn take_u8(&mut self) -> io::Result<u8> {
        let mut b = [0u8; 1];
        self.take(&mut b)?;
        Ok(b[0])
    }

    /// Reads a whole `u32` column of `len` entries, chunk by chunk.
    fn take_u32_column(&mut self, len: usize) -> io::Result<Vec<u32>> {
        let mut column = Vec::with_capacity(len.min(1 << 24));
        let mut chunk = [0u8; CHUNK_BYTES];
        let mut remaining = len;
        while remaining > 0 {
            let n = remaining.min(CHUNK_BYTES / 4);
            self.take(&mut chunk[..n * 4])?;
            column.extend(
                chunk[..n * 4]
                    .chunks_exact(4)
                    .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]])),
            );
            remaining -= n;
        }
        Ok(column)
    }
}

/// Reads one format-sniffed trace in whichever layout the file holds.
fn read_any<R: Read>(reader: R) -> io::Result<ReadTrace> {
    let mut chunked = ChunkedReader::new(reader);
    let mut magic = [0u8; 8];
    chunked.take(&mut magic)?;
    match &magic {
        m if m == MAGIC_V1 => read_v1(&mut chunked).map(ReadTrace::Legacy),
        m if m == MAGIC_V2 => read_v2(&mut chunked).map(ReadTrace::Packed),
        _ => Err(bad_data("not an FVLTRC1/FVLTRC2 trace")),
    }
}

/// A decoded trace, still in the layout the file stored it in.
enum ReadTrace {
    Legacy(Trace),
    Packed(PackedTrace),
}

fn read_v1<R: Read>(reader: &mut ChunkedReader<R>) -> io::Result<Trace> {
    let len = reader.take_u64()?;
    let mut events = Vec::with_capacity(len.min(1 << 24) as usize);
    for _ in 0..len {
        let tag = reader.take_u8()?;
        let event = match tag {
            TAG_LOAD | TAG_STORE => {
                let addr = reader.take_u32()?;
                let value = reader.take_u32()?;
                let kind = if tag == TAG_LOAD {
                    AccessKind::Load
                } else {
                    AccessKind::Store
                };
                TraceEvent::Access(Access { addr, value, kind })
            }
            TAG_ALLOC | TAG_FREE => {
                let kind = byte_to_kind(reader.take_u8()?)?;
                let base = reader.take_u32()?;
                let words = reader.take_u32()?;
                let region = Region::new(base, words, kind);
                if tag == TAG_ALLOC {
                    TraceEvent::Alloc(region)
                } else {
                    TraceEvent::Free(region)
                }
            }
            other => return Err(bad_data(format!("bad event tag {other}"))),
        };
        events.push(event);
    }
    Ok(Trace::from_events(events))
}

fn read_v2<R: Read>(reader: &mut ChunkedReader<R>) -> io::Result<PackedTrace> {
    let accesses = reader.take_u64()?;
    let region_count = reader.take_u64()?;
    if accesses > u64::from(u32::MAX) || region_count > 1 << 32 {
        return Err(bad_data("v2 trace header counts out of range"));
    }
    let addrs = reader.take_u32_column(accesses as usize)?;
    let values = reader.take_u32_column(accesses as usize)?;
    let mut regions = Vec::with_capacity(region_count.min(1 << 20) as usize);
    for _ in 0..region_count {
        let pos = reader.take_u64()?;
        let is_alloc = match reader.take_u8()? {
            0 => false,
            1 => true,
            other => return Err(bad_data(format!("bad region event flag {other}"))),
        };
        let kind = byte_to_kind(reader.take_u8()?)?;
        let base = reader.take_u32()?;
        let words = reader.take_u32()?;
        regions.push(RegionEvent {
            pos,
            is_alloc,
            region: Region::new(base, words, kind),
        });
    }
    PackedTrace::from_columns(addrs, values, regions).map_err(bad_data)
}

impl Trace {
    /// Writes the trace to `writer` in the original `FVLTRC1` per-event
    /// binary format (kept as the write default for compatibility with
    /// existing tooling; use [`PackedTrace::write_to`] for the columnar
    /// `FVLTRC2` format).
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from the writer. A `&mut` reference can
    /// be passed for writers you need back afterwards.
    pub fn write_to<W: Write>(&self, writer: W) -> io::Result<()> {
        let mut out = ChunkedWriter::new(writer);
        out.put(MAGIC_V1)?;
        out.put_u64(self.events().len() as u64)?;
        for event in self.events() {
            match *event {
                TraceEvent::Access(a) => {
                    let tag = match a.kind {
                        AccessKind::Load => TAG_LOAD,
                        AccessKind::Store => TAG_STORE,
                    };
                    out.put(&[tag])?;
                    out.put_u32(a.addr)?;
                    out.put_u32(a.value)?;
                }
                TraceEvent::Alloc(r) | TraceEvent::Free(r) => {
                    let tag = if matches!(event, TraceEvent::Alloc(_)) {
                        TAG_ALLOC
                    } else {
                        TAG_FREE
                    };
                    out.put(&[tag, kind_to_byte(r.kind)])?;
                    out.put_u32(r.base)?;
                    out.put_u32(r.words)?;
                }
            }
        }
        out.finish()
    }

    /// Reads a trace written by either [`Trace::write_to`] (`FVLTRC1`)
    /// or [`PackedTrace::write_to`] (`FVLTRC2`); columnar files are
    /// expanded into the event-log layout.
    ///
    /// # Errors
    ///
    /// Fails with `InvalidData` on a bad magic header or corrupt record,
    /// and propagates underlying I/O errors. A `&mut` reference can be
    /// passed for readers you need back afterwards.
    pub fn read_from<R: Read>(reader: R) -> io::Result<Trace> {
        match read_any(reader)? {
            ReadTrace::Legacy(trace) => Ok(trace),
            ReadTrace::Packed(packed) => Ok(packed.to_trace()),
        }
    }
}

impl PackedTrace {
    /// Writes the trace to `writer` in the columnar `FVLTRC2` format:
    /// header (magic, access count, region-event count), the packed
    /// address column, the value column, then the region side table —
    /// each streamed through [`CHUNK_BYTES`]-sized `write_all` calls.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from the writer. A `&mut` reference can
    /// be passed for writers you need back afterwards.
    pub fn write_to<W: Write>(&self, writer: W) -> io::Result<()> {
        let mut out = ChunkedWriter::new(writer);
        out.put(MAGIC_V2)?;
        out.put_u64(self.accesses())?;
        out.put_u64(self.region_events().len() as u64)?;
        for &addr in self.addrs() {
            out.put_u32(addr)?;
        }
        for &value in self.values() {
            out.put_u32(value)?;
        }
        for event in self.region_events() {
            out.put_u64(event.pos)?;
            out.put(&[u8::from(event.is_alloc), kind_to_byte(event.region.kind)])?;
            out.put_u32(event.region.base)?;
            out.put_u32(event.region.words)?;
        }
        out.finish()
    }

    /// Reads a trace written by either [`PackedTrace::write_to`]
    /// (`FVLTRC2`) or [`Trace::write_to`] (`FVLTRC1`); per-event files
    /// are packed into the columnar layout.
    ///
    /// # Errors
    ///
    /// Fails with `InvalidData` on a bad magic header or corrupt record,
    /// and propagates underlying I/O errors. A `&mut` reference can be
    /// passed for readers you need back afterwards.
    pub fn read_from<R: Read>(reader: R) -> io::Result<PackedTrace> {
        match read_any(reader)? {
            ReadTrace::Legacy(trace) => Ok(PackedTrace::from_trace(&trace)),
            ReadTrace::Packed(packed) => Ok(packed),
        }
    }

    /// Encoded size of this trace in the `FVLTRC2` format, without
    /// writing it: header + two `u32` columns + region records.
    pub fn encoded_len(&self) -> u64 {
        8 + 8 + 8 + 8 * self.accesses() + (self.region_events().len() * REGION_RECORD_BYTES) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::CountingSink;
    use crate::bus::{Bus, BusExt};
    use crate::traced::TracedMemory;

    fn sample_trace() -> Trace {
        let mut buf = crate::trace::TraceBuffer::new();
        {
            let mut m = TracedMemory::new(&mut buf);
            let a = m.alloc(4);
            m.fill(a, 4, 7);
            let f = m.push_frame(2);
            m.store(f, 9);
            let _ = m.load(a);
            m.pop_frame();
            m.free(a);
        }
        buf.into_trace()
    }

    #[test]
    fn round_trip_preserves_every_event() {
        let trace = sample_trace();
        let mut bytes = Vec::new();
        trace.write_to(&mut bytes).unwrap();
        let loaded = Trace::read_from(bytes.as_slice()).unwrap();
        assert_eq!(loaded.events(), trace.events());
        assert_eq!(loaded.accesses(), trace.accesses());
        // Replays identically.
        let mut a = CountingSink::new();
        let mut b = CountingSink::new();
        trace.replay(&mut a);
        loaded.replay(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn v2_round_trip_preserves_columns() {
        let packed = PackedTrace::from_trace(&sample_trace());
        let mut bytes = Vec::new();
        packed.write_to(&mut bytes).unwrap();
        assert_eq!(bytes.len() as u64, packed.encoded_len());
        assert_eq!(&bytes[..8], MAGIC_V2);
        let loaded = PackedTrace::read_from(bytes.as_slice()).unwrap();
        assert_eq!(loaded.addrs(), packed.addrs());
        assert_eq!(loaded.values(), packed.values());
        assert_eq!(loaded.region_events(), packed.region_events());
    }

    #[test]
    fn formats_cross_load() {
        let trace = sample_trace();
        // v1 bytes load into a PackedTrace…
        let mut v1 = Vec::new();
        trace.write_to(&mut v1).unwrap();
        let packed = PackedTrace::read_from(v1.as_slice()).unwrap();
        assert_eq!(packed.accesses(), trace.accesses());
        // …and v2 bytes load into a legacy Trace.
        let mut v2 = Vec::new();
        packed.write_to(&mut v2).unwrap();
        let unpacked = Trace::read_from(v2.as_slice()).unwrap();
        assert_eq!(unpacked.events(), trace.events());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = Trace::read_from(&b"NOTATRACE"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let err = PackedTrace::read_from(&b"NOTATRACE"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_stream_is_an_error() {
        let trace = sample_trace();
        let mut v1 = Vec::new();
        trace.write_to(&mut v1).unwrap();
        v1.truncate(v1.len() - 3);
        assert!(Trace::read_from(v1.as_slice()).is_err());

        let mut v2 = Vec::new();
        PackedTrace::from_trace(&trace).write_to(&mut v2).unwrap();
        v2.truncate(v2.len() - 3);
        assert!(PackedTrace::read_from(v2.as_slice()).is_err());
    }

    #[test]
    fn bad_tag_is_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC_V1);
        bytes.extend_from_slice(&1u64.to_le_bytes());
        bytes.push(99); // invalid tag
        let err = Trace::read_from(bytes.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn bad_v2_region_flag_is_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC_V2);
        bytes.extend_from_slice(&0u64.to_le_bytes()); // no accesses
        bytes.extend_from_slice(&1u64.to_le_bytes()); // one region event
        bytes.extend_from_slice(&0u64.to_le_bytes()); // pos
        bytes.push(7); // invalid is_alloc flag
        bytes.push(0);
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&4u32.to_le_bytes());
        let err = PackedTrace::read_from(bytes.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn empty_trace_round_trips() {
        let trace = Trace::from_events(vec![]);
        let mut bytes = Vec::new();
        trace.write_to(&mut bytes).unwrap();
        let loaded = Trace::read_from(bytes.as_slice()).unwrap();
        assert!(loaded.is_empty());

        let packed = PackedTrace::from_trace(&trace);
        let mut bytes = Vec::new();
        packed.write_to(&mut bytes).unwrap();
        assert!(PackedTrace::read_from(bytes.as_slice()).unwrap().is_empty());
    }

    #[test]
    fn large_trace_crosses_chunk_boundaries() {
        // > 64 KiB in both formats so the chunk buffer flushes mid-column.
        let mut events = Vec::new();
        for i in 0u32..20_000 {
            events.push(TraceEvent::Access(Access::store((i % 4096) * 4, i)));
        }
        let trace = Trace::from_events(events);
        let mut v1 = Vec::new();
        trace.write_to(&mut v1).unwrap();
        assert!(v1.len() > CHUNK_BYTES);
        assert_eq!(
            Trace::read_from(v1.as_slice()).unwrap().events(),
            trace.events()
        );

        let packed = PackedTrace::from_trace(&trace);
        let mut v2 = Vec::new();
        packed.write_to(&mut v2).unwrap();
        assert!(v2.len() > CHUNK_BYTES);
        // Access-dominated traces shrink to ~8/9 of the v1 encoding.
        assert!(
            v2.len() < v1.len(),
            "v2 ({}) >= v1 ({})",
            v2.len(),
            v1.len()
        );
        let loaded = PackedTrace::read_from(v2.as_slice()).unwrap();
        assert_eq!(loaded.addrs(), packed.addrs());
        assert_eq!(loaded.values(), packed.values());
    }
}
