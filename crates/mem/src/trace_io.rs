//! Binary serialization of traces.
//!
//! Recorded traces can be written to disk and replayed later, so an
//! expensive workload execution (or an externally collected trace) can
//! drive many simulation campaigns. The format is a simple
//! little-endian record stream with a magic header — deliberately
//! dependency-free.

use crate::access::{Access, AccessKind};
use crate::layout::{Region, RegionKind};
use crate::trace::{Trace, TraceEvent};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 8] = b"FVLTRC1\n";

const TAG_LOAD: u8 = 0;
const TAG_STORE: u8 = 1;
const TAG_ALLOC: u8 = 2;
const TAG_FREE: u8 = 3;

fn kind_to_byte(kind: RegionKind) -> u8 {
    match kind {
        RegionKind::Global => 0,
        RegionKind::Heap => 1,
        RegionKind::Stack => 2,
    }
}

fn byte_to_kind(b: u8) -> io::Result<RegionKind> {
    match b {
        0 => Ok(RegionKind::Global),
        1 => Ok(RegionKind::Heap),
        2 => Ok(RegionKind::Stack),
        other => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad region kind byte {other}"),
        )),
    }
}

impl Trace {
    /// Writes the trace to `writer` in the `FVLTRC1` binary format.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from the writer. A `&mut` reference can
    /// be passed for writers you need back afterwards.
    pub fn write_to<W: Write>(&self, mut writer: W) -> io::Result<()> {
        writer.write_all(MAGIC)?;
        writer.write_all(&(self.events().len() as u64).to_le_bytes())?;
        for event in self.events() {
            match *event {
                TraceEvent::Access(a) => {
                    let tag = match a.kind {
                        AccessKind::Load => TAG_LOAD,
                        AccessKind::Store => TAG_STORE,
                    };
                    writer.write_all(&[tag])?;
                    writer.write_all(&a.addr.to_le_bytes())?;
                    writer.write_all(&a.value.to_le_bytes())?;
                }
                TraceEvent::Alloc(r) | TraceEvent::Free(r) => {
                    let tag = if matches!(event, TraceEvent::Alloc(_)) {
                        TAG_ALLOC
                    } else {
                        TAG_FREE
                    };
                    writer.write_all(&[tag, kind_to_byte(r.kind)])?;
                    writer.write_all(&r.base.to_le_bytes())?;
                    writer.write_all(&r.words.to_le_bytes())?;
                }
            }
        }
        Ok(())
    }

    /// Reads a trace previously written with [`Trace::write_to`].
    ///
    /// # Errors
    ///
    /// Fails with `InvalidData` on a bad magic header or corrupt record,
    /// and propagates underlying I/O errors. A `&mut` reference can be
    /// passed for readers you need back afterwards.
    pub fn read_from<R: Read>(mut reader: R) -> io::Result<Trace> {
        let mut magic = [0u8; 8];
        reader.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not an FVLTRC1 trace",
            ));
        }
        let mut len8 = [0u8; 8];
        reader.read_exact(&mut len8)?;
        let len = u64::from_le_bytes(len8);
        let mut events = Vec::with_capacity(len.min(1 << 24) as usize);
        let mut u32_buf = [0u8; 4];
        let mut read_u32 = |reader: &mut R| -> io::Result<u32> {
            reader.read_exact(&mut u32_buf)?;
            Ok(u32::from_le_bytes(u32_buf))
        };
        for _ in 0..len {
            let mut tag = [0u8; 1];
            reader.read_exact(&mut tag)?;
            let event = match tag[0] {
                TAG_LOAD | TAG_STORE => {
                    let addr = read_u32(&mut reader)?;
                    let value = read_u32(&mut reader)?;
                    let kind = if tag[0] == TAG_LOAD {
                        AccessKind::Load
                    } else {
                        AccessKind::Store
                    };
                    TraceEvent::Access(Access { addr, value, kind })
                }
                TAG_ALLOC | TAG_FREE => {
                    let mut kind_byte = [0u8; 1];
                    reader.read_exact(&mut kind_byte)?;
                    let kind = byte_to_kind(kind_byte[0])?;
                    let base = read_u32(&mut reader)?;
                    let words = read_u32(&mut reader)?;
                    let region = Region::new(base, words, kind);
                    if tag[0] == TAG_ALLOC {
                        TraceEvent::Alloc(region)
                    } else {
                        TraceEvent::Free(region)
                    }
                }
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("bad event tag {other}"),
                    ))
                }
            };
            events.push(event);
        }
        Ok(Trace::from_events(events))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::CountingSink;
    use crate::bus::{Bus, BusExt};
    use crate::traced::TracedMemory;

    fn sample_trace() -> Trace {
        let mut buf = crate::trace::TraceBuffer::new();
        {
            let mut m = TracedMemory::new(&mut buf);
            let a = m.alloc(4);
            m.fill(a, 4, 7);
            let f = m.push_frame(2);
            m.store(f, 9);
            let _ = m.load(a);
            m.pop_frame();
            m.free(a);
        }
        buf.into_trace()
    }

    #[test]
    fn round_trip_preserves_every_event() {
        let trace = sample_trace();
        let mut bytes = Vec::new();
        trace.write_to(&mut bytes).unwrap();
        let loaded = Trace::read_from(bytes.as_slice()).unwrap();
        assert_eq!(loaded.events(), trace.events());
        assert_eq!(loaded.accesses(), trace.accesses());
        // Replays identically.
        let mut a = CountingSink::new();
        let mut b = CountingSink::new();
        trace.replay(&mut a);
        loaded.replay(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = Trace::read_from(&b"NOTATRACE"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_stream_is_an_error() {
        let trace = sample_trace();
        let mut bytes = Vec::new();
        trace.write_to(&mut bytes).unwrap();
        bytes.truncate(bytes.len() - 3);
        assert!(Trace::read_from(bytes.as_slice()).is_err());
    }

    #[test]
    fn bad_tag_is_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&1u64.to_le_bytes());
        bytes.push(99); // invalid tag
        let err = Trace::read_from(bytes.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn empty_trace_round_trips() {
        let trace = Trace::from_events(vec![]);
        let mut bytes = Vec::new();
        trace.write_to(&mut bytes).unwrap();
        let loaded = Trace::read_from(bytes.as_slice()).unwrap();
        assert!(loaded.is_empty());
    }
}
