//! Binary serialization of traces.
//!
//! Recorded traces can be written to disk and replayed later, so an
//! expensive workload execution (or an externally collected trace) can
//! drive many simulation campaigns. Two little-endian formats exist,
//! both dependency-free and distinguished by their magic header:
//!
//! * `FVLTRC1` — the original per-event record stream (tag byte plus
//!   fields per event). Still written by [`Trace::write_to`] so
//!   existing tooling and archived traces keep working.
//! * `FVLTRC2` — the columnar format written by
//!   [`PackedTrace::write_to`]: one header, the packed address column,
//!   the value column, then the region-event side table. Roughly half
//!   the bytes of v1 for access-dominated traces, and decoding is two
//!   bulk column reads instead of per-event tag dispatch.
//! * `FVLTRC21` — the chunk-indexed v2.1 evolution written by
//!   [`PackedTrace::write_v21_to`]: the columns are split into
//!   [`CHUNK_ACCESSES`]-access chunks, each chunk's address column is
//!   delta + varint compressed (see [`crate::varint`]), and a footer
//!   index records every chunk's file offset so the memory-mapped
//!   reader ([`crate::MappedTrace`]) can decode chunks lazily and out
//!   of order. Layout:
//!
//!   ```text
//!   magic "FVLTRC21"
//!   accesses u64 | region_count u64 | chunk_count u64
//!   chunk_accesses u32 | reserved u32
//!   per chunk:  chunk_len u32 | addr_bytes u32
//!               addr varints (addr_bytes) | values (4 * chunk_len)
//!   per region event: the 18-byte v2 record
//!   footer index, per chunk: payload_offset u64 | chunk_len u32
//!                            | addr_bytes u32
//!   index_offset u64
//!   ```
//!
//!   The inline chunk headers make the stream self-delimiting, so the
//!   sequential readers below never look at the footer (trailing bytes
//!   stay tolerated, as for v1/v2); the footer is validated only by the
//!   random-access mapped reader.
//! * `FVLTRC22` — the same chunk-indexed container with the address
//!   codec swapped: each chunk's address column is the stream-split
//!   layout of [`crate::varint::encode_addr_chunk_split`] (a control
//!   stream of 2-bit length codes, then the trimmed little-endian
//!   token bytes), which decodes branch-free and SIMD-wide. The v2.1
//!   `reserved` header word carries the codec id ([`AddrCodec::id`],
//!   `1` for split) and must match the magic on read. Everything else —
//!   header, inline chunk headers, value columns, region table, footer
//!   index — is byte-compatible with v2.1.
//!
//! [`Trace::read_from`] and [`PackedTrace::read_from`] sniff the
//! magic and accept **any** format, converting as needed — old v1
//! files load into packed pipelines and new v2/v2.1 files load into
//! legacy ones.
//!
//! All encoding goes through an explicit chunk buffer
//! ([`CHUNK_BYTES`]-sized `write_all` calls instead of one syscall-ish
//! write per field) and reads mirror that chunking.

use crate::access::{Access, AccessKind};
use crate::layout::{Region, RegionKind};
use crate::packed::{PackedTrace, RegionEvent};
use crate::trace::{Trace, TraceEvent};
use std::io::{self, Read, Write};

const MAGIC_V1: &[u8; 8] = b"FVLTRC1\n";
const MAGIC_V2: &[u8; 8] = b"FVLTRC2\n";
pub(crate) const MAGIC_V21: &[u8; 8] = b"FVLTRC21";
pub(crate) const MAGIC_V22: &[u8; 8] = b"FVLTRC22";

/// Size of the encode/decode staging buffer: every `write_all` to the
/// underlying writer (and every `read` from the underlying reader)
/// moves about this many bytes, not one field's worth.
pub const CHUNK_BYTES: usize = 64 * 1024;

/// Default accesses per v2.1 chunk — the unit of lazy decode for the
/// mapped reader and of residency accounting for the corpus manager.
/// 8192 accesses is 32 KiB of resident columns, a few pages of mapped
/// file, and two [`crate::ACCESS_BLOCK`]-aligned orders of magnitude of
/// SIMD replay per decode.
pub const CHUNK_ACCESSES: u32 = 8192;

/// Bytes of v2.1 fixed header: magic + accesses + region_count +
/// chunk_count + chunk_accesses + reserved.
pub(crate) const V21_HEADER_BYTES: usize = 8 + 8 + 8 + 8 + 4 + 4;

/// Bytes per v2.1 footer-index entry: payload_offset u64 + chunk_len
/// u32 + addr_bytes u32.
pub(crate) const V21_INDEX_ENTRY_BYTES: usize = 16;

const TAG_LOAD: u8 = 0;
const TAG_STORE: u8 = 1;
const TAG_ALLOC: u8 = 2;
const TAG_FREE: u8 = 3;

/// Bytes per v2 region-event record: u64 pos + u8 is_alloc + u8 kind +
/// u32 base + u32 words.
pub(crate) const REGION_RECORD_BYTES: usize = 18;

fn kind_to_byte(kind: RegionKind) -> u8 {
    match kind {
        RegionKind::Global => 0,
        RegionKind::Heap => 1,
        RegionKind::Stack => 2,
    }
}

pub(crate) fn byte_to_kind(b: u8) -> io::Result<RegionKind> {
    match b {
        0 => Ok(RegionKind::Global),
        1 => Ok(RegionKind::Heap),
        2 => Ok(RegionKind::Stack),
        other => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad region kind byte {other}"),
        )),
    }
}

pub(crate) fn bad_data(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Accumulates encoded bytes and flushes them to the underlying writer
/// one [`CHUNK_BYTES`] block at a time.
struct ChunkedWriter<W: Write> {
    writer: W,
    buf: Vec<u8>,
}

impl<W: Write> ChunkedWriter<W> {
    fn new(writer: W) -> Self {
        ChunkedWriter {
            writer,
            buf: Vec::with_capacity(CHUNK_BYTES),
        }
    }

    #[inline]
    fn put(&mut self, bytes: &[u8]) -> io::Result<()> {
        if self.buf.len() + bytes.len() > CHUNK_BYTES {
            self.flush()?;
            if bytes.len() >= CHUNK_BYTES {
                // Oversized payloads go straight through.
                return self.writer.write_all(bytes);
            }
        }
        self.buf.extend_from_slice(bytes);
        Ok(())
    }

    #[inline]
    fn put_u32(&mut self, v: u32) -> io::Result<()> {
        self.put(&v.to_le_bytes())
    }

    #[inline]
    fn put_u64(&mut self, v: u64) -> io::Result<()> {
        self.put(&v.to_le_bytes())
    }

    fn flush(&mut self) -> io::Result<()> {
        if !self.buf.is_empty() {
            self.writer.write_all(&self.buf)?;
            self.buf.clear();
        }
        Ok(())
    }

    fn finish(mut self) -> io::Result<()> {
        self.flush()
    }
}

/// Mirror of [`ChunkedWriter`] for decoding: refills a
/// [`CHUNK_BYTES`] staging buffer from the underlying reader and hands
/// out exact-sized slices from it.
struct ChunkedReader<R: Read> {
    reader: R,
    buf: Vec<u8>,
    pos: usize,
    len: usize,
}

impl<R: Read> ChunkedReader<R> {
    fn new(reader: R) -> Self {
        ChunkedReader {
            reader,
            buf: vec![0u8; CHUNK_BYTES],
            pos: 0,
            len: 0,
        }
    }

    fn take(&mut self, out: &mut [u8]) -> io::Result<()> {
        let mut filled = 0;
        while filled < out.len() {
            if self.pos == self.len {
                self.len = self.reader.read(&mut self.buf)?;
                self.pos = 0;
                if self.len == 0 {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "trace stream truncated",
                    ));
                }
            }
            let n = (out.len() - filled).min(self.len - self.pos);
            out[filled..filled + n].copy_from_slice(&self.buf[self.pos..self.pos + n]);
            self.pos += n;
            filled += n;
        }
        Ok(())
    }

    #[inline]
    fn take_u32(&mut self) -> io::Result<u32> {
        let mut b = [0u8; 4];
        self.take(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    #[inline]
    fn take_u64(&mut self) -> io::Result<u64> {
        let mut b = [0u8; 8];
        self.take(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    #[inline]
    fn take_u8(&mut self) -> io::Result<u8> {
        let mut b = [0u8; 1];
        self.take(&mut b)?;
        Ok(b[0])
    }

    /// Reads a whole `u32` column of `len` entries, chunk by chunk.
    fn take_u32_column(&mut self, len: usize) -> io::Result<Vec<u32>> {
        let mut column = Vec::new();
        self.take_u32_column_into(len, &mut column)?;
        Ok(column)
    }

    /// [`Self::take_u32_column`] appending into a caller-owned column,
    /// so a multi-chunk reader avoids a per-chunk staging allocation.
    fn take_u32_column_into(&mut self, len: usize, column: &mut Vec<u32>) -> io::Result<()> {
        column.reserve(len.min(1 << 24));
        let mut chunk = [0u8; CHUNK_BYTES];
        let mut remaining = len;
        while remaining > 0 {
            let n = remaining.min(CHUNK_BYTES / 4);
            self.take(&mut chunk[..n * 4])?;
            column.extend(
                chunk[..n * 4]
                    .chunks_exact(4)
                    .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]])),
            );
            remaining -= n;
        }
        Ok(())
    }
}

/// Reads one format-sniffed trace in whichever layout the file holds.
fn read_any<R: Read>(reader: R) -> io::Result<ReadTrace> {
    let mut chunked = ChunkedReader::new(reader);
    let mut magic = [0u8; 8];
    chunked.take(&mut magic)?;
    match &magic {
        m if m == MAGIC_V1 => read_v1(&mut chunked).map(ReadTrace::Legacy),
        m if m == MAGIC_V2 => read_v2(&mut chunked).map(ReadTrace::Packed),
        m if m == MAGIC_V21 => read_v21(&mut chunked).map(ReadTrace::Packed),
        m if m == MAGIC_V22 => read_v22(&mut chunked).map(ReadTrace::Packed),
        _ => Err(bad_data("not an FVLTRC1/FVLTRC2/FVLTRC21/FVLTRC22 trace")),
    }
}

/// A decoded trace, still in the layout the file stored it in.
enum ReadTrace {
    Legacy(Trace),
    Packed(PackedTrace),
}

fn read_v1<R: Read>(reader: &mut ChunkedReader<R>) -> io::Result<Trace> {
    let len = reader.take_u64()?;
    let mut events = Vec::with_capacity(len.min(1 << 24) as usize);
    for _ in 0..len {
        let tag = reader.take_u8()?;
        let event = match tag {
            TAG_LOAD | TAG_STORE => {
                let addr = reader.take_u32()?;
                let value = reader.take_u32()?;
                let kind = if tag == TAG_LOAD {
                    AccessKind::Load
                } else {
                    AccessKind::Store
                };
                TraceEvent::Access(Access { addr, value, kind })
            }
            TAG_ALLOC | TAG_FREE => {
                let kind = byte_to_kind(reader.take_u8()?)?;
                let base = reader.take_u32()?;
                let words = reader.take_u32()?;
                let region = Region::new(base, words, kind);
                if tag == TAG_ALLOC {
                    TraceEvent::Alloc(region)
                } else {
                    TraceEvent::Free(region)
                }
            }
            other => return Err(bad_data(format!("bad event tag {other}"))),
        };
        events.push(event);
    }
    Ok(Trace::from_events(events))
}

fn read_v2<R: Read>(reader: &mut ChunkedReader<R>) -> io::Result<PackedTrace> {
    let accesses = reader.take_u64()?;
    let region_count = reader.take_u64()?;
    if accesses > u64::from(u32::MAX) || region_count > 1 << 32 {
        return Err(bad_data("v2 trace header counts out of range"));
    }
    let addrs = reader.take_u32_column(accesses as usize)?;
    let values = reader.take_u32_column(accesses as usize)?;
    let regions = read_regions(reader, region_count)?;
    PackedTrace::from_columns(addrs, values, regions).map_err(bad_data)
}

/// Reads `region_count` v2-layout region records (shared by the v2 and
/// v2.1 decoders).
fn read_regions<R: Read>(
    reader: &mut ChunkedReader<R>,
    region_count: u64,
) -> io::Result<Vec<RegionEvent>> {
    let mut regions = Vec::with_capacity(region_count.min(1 << 20) as usize);
    for _ in 0..region_count {
        let pos = reader.take_u64()?;
        let is_alloc = match reader.take_u8()? {
            0 => false,
            1 => true,
            other => return Err(bad_data(format!("bad region event flag {other}"))),
        };
        let kind = byte_to_kind(reader.take_u8()?)?;
        let base = reader.take_u32()?;
        let words = reader.take_u32()?;
        regions.push(RegionEvent {
            pos,
            is_alloc,
            region: Region::new(base, words, kind),
        });
    }
    Ok(regions)
}

/// The per-chunk address-column codec of a chunk-indexed trace file,
/// determined by the magic (`FVLTRC21` vs `FVLTRC22`) and recorded
/// redundantly in the header's codec word.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub enum AddrCodec {
    /// LEB128 delta varints ([`crate::varint::encode_addr_chunk`]) —
    /// the `FVLTRC21` codec.
    Varint,
    /// Stream-split control + payload streams
    /// ([`crate::varint::encode_addr_chunk_split`]) — the `FVLTRC22`
    /// codec, decodable branch-free and SIMD-wide.
    Split,
}

impl AddrCodec {
    /// Codec id stored in the header word at offset 36 (the v2.1
    /// `reserved` word, which v2.1 writers set to 0 and v2.1 readers
    /// ignore — so v2.2 is a pure extension).
    pub(crate) fn id(self) -> u32 {
        match self {
            AddrCodec::Varint => 0,
            AddrCodec::Split => 1,
        }
    }

    /// Short lower-case label (`"varint"`, `"split"`), used by CLIs
    /// and logs.
    pub fn label(self) -> &'static str {
        match self {
            AddrCodec::Varint => "varint",
            AddrCodec::Split => "split",
        }
    }

    /// Parses a codec label as accepted by `corpus gen --codec`:
    /// `v21`/`varint` or `v22`/`split`.
    pub fn parse(s: &str) -> Option<AddrCodec> {
        match s {
            "v21" | "varint" => Some(AddrCodec::Varint),
            "v22" | "split" => Some(AddrCodec::Split),
            _ => None,
        }
    }
}

/// The fixed v2.1/v2.2 header fields (minus the magic), validated.
#[derive(Copy, Clone, Debug)]
pub(crate) struct V21Header {
    /// Total access events across all chunks.
    pub accesses: u64,
    /// Region-event records after the chunk payloads.
    pub region_count: u64,
    /// Number of chunks; always `accesses.div_ceil(chunk_accesses)`.
    pub chunk_count: u64,
    /// Accesses per chunk (every chunk but the last is exactly full).
    pub chunk_accesses: u32,
    /// Address-column codec, fixed by the magic that led here.
    pub codec: AddrCodec,
}

impl V21Header {
    /// Validates the header invariants hostile inputs could break:
    /// counts in range, chunk geometry consistent with the access
    /// count, and a nonzero chunk size whenever there are accesses.
    pub(crate) fn validate(self) -> io::Result<V21Header> {
        if self.accesses > u64::from(u32::MAX) || self.region_count > 1 << 32 {
            return Err(bad_data("v2.1 trace header counts out of range"));
        }
        let expect_chunks = if self.accesses == 0 {
            0
        } else if self.chunk_accesses == 0 {
            return Err(bad_data("v2.1 chunk size is zero"));
        } else {
            self.accesses.div_ceil(u64::from(self.chunk_accesses))
        };
        if self.chunk_count != expect_chunks {
            return Err(bad_data(format!(
                "v2.1 chunk count {} inconsistent with {} accesses of {} per chunk",
                self.chunk_count, self.accesses, self.chunk_accesses
            )));
        }
        Ok(self)
    }

    /// The access-column range `[lo, hi)` chunk `i` covers.
    pub(crate) fn chunk_range(&self, i: u64) -> (u64, u64) {
        let lo = i * u64::from(self.chunk_accesses);
        let hi = (lo + u64::from(self.chunk_accesses)).min(self.accesses);
        (lo, hi)
    }

    /// Checks one chunk's inline (or index) header against the
    /// geometry this header promises, bounding `addr_bytes` before any
    /// allocation happens.
    pub(crate) fn check_chunk(&self, i: u64, chunk_len: u32, addr_bytes: u32) -> io::Result<()> {
        let (lo, hi) = self.chunk_range(i);
        if u64::from(chunk_len) != hi - lo {
            return Err(bad_data(format!(
                "v2.1 chunk {i} declares {chunk_len} accesses, expected {}",
                hi - lo
            )));
        }
        let len = u64::from(chunk_len);
        let (min, max) = match self.codec {
            AddrCodec::Varint => (0, crate::varint::MAX_VARINT_BYTES_PER_ADDR as u64 * len),
            // Split columns carry ceil(len/4) control bytes plus 1–4
            // payload bytes per address; both bounds hold for every
            // well-formed column, so a hostile field outside them is
            // rejected before any allocation.
            AddrCodec::Split => {
                let control = len.div_ceil(4);
                (
                    control + len,
                    control + crate::varint::MAX_SPLIT_BYTES_PER_ADDR as u64 * len,
                )
            }
        };
        if u64::from(addr_bytes) < min || u64::from(addr_bytes) > max {
            return Err(bad_data(format!(
                "v2.1 chunk {i} declares {addr_bytes} address bytes for {chunk_len} accesses"
            )));
        }
        Ok(())
    }
}

fn read_v21<R: Read>(reader: &mut ChunkedReader<R>) -> io::Result<PackedTrace> {
    read_chunked(reader, AddrCodec::Varint)
}

fn read_v22<R: Read>(reader: &mut ChunkedReader<R>) -> io::Result<PackedTrace> {
    read_chunked(reader, AddrCodec::Split)
}

/// Shared sequential decoder for the chunk-indexed formats; `codec`
/// comes from the magic the caller sniffed.
fn read_chunked<R: Read>(
    reader: &mut ChunkedReader<R>,
    codec: AddrCodec,
) -> io::Result<PackedTrace> {
    let header = V21Header {
        accesses: reader.take_u64()?,
        region_count: reader.take_u64()?,
        chunk_count: reader.take_u64()?,
        chunk_accesses: reader.take_u32()?,
        codec,
    }
    .validate()?;
    let reserved = reader.take_u32()?;
    // v2.1 wrote 0 and ignores the word on read; v2.2 demands its own
    // codec id so a magic/codec mismatch cannot decode garbage.
    if codec == AddrCodec::Split && reserved != codec.id() {
        return Err(bad_data(format!(
            "FVLTRC22 header declares codec id {reserved}, expected {}",
            codec.id()
        )));
    }
    let mut addrs = Vec::with_capacity((header.accesses as usize).min(1 << 24));
    let mut values = Vec::with_capacity((header.accesses as usize).min(1 << 24));
    let mut encoded = Vec::new();
    let level = crate::simd::active_level();
    for chunk in 0..header.chunk_count {
        let chunk_len = reader.take_u32()?;
        let addr_bytes = reader.take_u32()?;
        header.check_chunk(chunk, chunk_len, addr_bytes)?;
        encoded.clear();
        encoded.resize(addr_bytes as usize, 0);
        reader.take(&mut encoded)?;
        match codec {
            AddrCodec::Varint => {
                crate::varint::decode_addr_chunk_into(&encoded, chunk_len as usize, &mut addrs)?
            }
            AddrCodec::Split => crate::varint::decode_addr_chunk_split_into_with(
                &encoded,
                chunk_len as usize,
                level,
                &mut addrs,
            )?,
        }
        reader.take_u32_column_into(chunk_len as usize, &mut values)?;
    }
    let regions = read_regions(reader, header.region_count)?;
    // The footer index is for random access; the sequential decode is
    // complete without it, so it reads as tolerated trailing bytes.
    PackedTrace::from_columns(addrs, values, regions).map_err(bad_data)
}

impl Trace {
    /// Writes the trace to `writer` in the original `FVLTRC1` per-event
    /// binary format (kept as the write default for compatibility with
    /// existing tooling; use [`PackedTrace::write_to`] for the columnar
    /// `FVLTRC2` format).
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from the writer. A `&mut` reference can
    /// be passed for writers you need back afterwards.
    pub fn write_to<W: Write>(&self, writer: W) -> io::Result<()> {
        let mut out = ChunkedWriter::new(writer);
        out.put(MAGIC_V1)?;
        out.put_u64(self.events().len() as u64)?;
        for event in self.events() {
            match *event {
                TraceEvent::Access(a) => {
                    let tag = match a.kind {
                        AccessKind::Load => TAG_LOAD,
                        AccessKind::Store => TAG_STORE,
                    };
                    out.put(&[tag])?;
                    out.put_u32(a.addr)?;
                    out.put_u32(a.value)?;
                }
                TraceEvent::Alloc(r) | TraceEvent::Free(r) => {
                    let tag = if matches!(event, TraceEvent::Alloc(_)) {
                        TAG_ALLOC
                    } else {
                        TAG_FREE
                    };
                    out.put(&[tag, kind_to_byte(r.kind)])?;
                    out.put_u32(r.base)?;
                    out.put_u32(r.words)?;
                }
            }
        }
        out.finish()
    }

    /// Reads a trace written by either [`Trace::write_to`] (`FVLTRC1`)
    /// or [`PackedTrace::write_to`] (`FVLTRC2`); columnar files are
    /// expanded into the event-log layout.
    ///
    /// # Errors
    ///
    /// Fails with `InvalidData` on a bad magic header or corrupt record,
    /// and propagates underlying I/O errors. A `&mut` reference can be
    /// passed for readers you need back afterwards.
    pub fn read_from<R: Read>(reader: R) -> io::Result<Trace> {
        match read_any(reader)? {
            ReadTrace::Legacy(trace) => Ok(trace),
            ReadTrace::Packed(packed) => Ok(packed.to_trace()),
        }
    }
}

impl PackedTrace {
    /// Writes the trace to `writer` in the columnar `FVLTRC2` format:
    /// header (magic, access count, region-event count), the packed
    /// address column, the value column, then the region side table —
    /// each streamed through [`CHUNK_BYTES`]-sized `write_all` calls.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from the writer. A `&mut` reference can
    /// be passed for writers you need back afterwards.
    pub fn write_to<W: Write>(&self, writer: W) -> io::Result<()> {
        let mut out = ChunkedWriter::new(writer);
        out.put(MAGIC_V2)?;
        out.put_u64(self.accesses())?;
        out.put_u64(self.region_events().len() as u64)?;
        for &addr in self.addrs() {
            out.put_u32(addr)?;
        }
        for &value in self.values() {
            out.put_u32(value)?;
        }
        for event in self.region_events() {
            out.put_u64(event.pos)?;
            out.put(&[u8::from(event.is_alloc), kind_to_byte(event.region.kind)])?;
            out.put_u32(event.region.base)?;
            out.put_u32(event.region.words)?;
        }
        out.finish()
    }

    /// Reads a trace written by either [`PackedTrace::write_to`]
    /// (`FVLTRC2`) or [`Trace::write_to`] (`FVLTRC1`); per-event files
    /// are packed into the columnar layout.
    ///
    /// # Errors
    ///
    /// Fails with `InvalidData` on a bad magic header or corrupt record,
    /// and propagates underlying I/O errors. A `&mut` reference can be
    /// passed for readers you need back afterwards.
    pub fn read_from<R: Read>(reader: R) -> io::Result<PackedTrace> {
        match read_any(reader)? {
            ReadTrace::Legacy(trace) => Ok(PackedTrace::from_trace(&trace)),
            ReadTrace::Packed(packed) => Ok(packed),
        }
    }

    /// Encoded size of this trace in the `FVLTRC2` format, without
    /// writing it: header + two `u32` columns + region records.
    pub fn encoded_len(&self) -> u64 {
        8 + 8 + 8 + 8 * self.accesses() + (self.region_events().len() * REGION_RECORD_BYTES) as u64
    }

    /// Writes the trace in the chunk-indexed `FVLTRC21` (v2.1) format
    /// with the default [`CHUNK_ACCESSES`] chunk size: per-chunk
    /// delta+varint address columns, raw value columns, the v2 region
    /// table, and a footer chunk index for random access (see the
    /// module docs for the layout). On-disk size is typically well
    /// under the resident form's 8 bytes per access.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from the writer.
    pub fn write_v21_to<W: Write>(&self, writer: W) -> io::Result<()> {
        self.write_v21_with(writer, CHUNK_ACCESSES)
    }

    /// [`PackedTrace::write_v21_to`] with an explicit chunk size —
    /// small chunks let tests and CI exercise many-chunk files without
    /// huge traces.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_accesses` is zero.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from the writer.
    pub fn write_v21_with<W: Write>(&self, writer: W, chunk_accesses: u32) -> io::Result<()> {
        self.write_chunked(writer, chunk_accesses, AddrCodec::Varint)
    }

    /// Writes the trace in the chunk-indexed `FVLTRC22` (v2.2) format
    /// with the default [`CHUNK_ACCESSES`] chunk size: the v2.1
    /// container with each chunk's address column in the stream-split
    /// codec ([`crate::varint::encode_addr_chunk_split`]), which trades
    /// ≤ 25% address-column growth for branch-free, SIMD-wide decode.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from the writer.
    pub fn write_v22_to<W: Write>(&self, writer: W) -> io::Result<()> {
        self.write_v22_with(writer, CHUNK_ACCESSES)
    }

    /// [`PackedTrace::write_v22_to`] with an explicit chunk size.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_accesses` is zero.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from the writer.
    pub fn write_v22_with<W: Write>(&self, writer: W, chunk_accesses: u32) -> io::Result<()> {
        self.write_chunked(writer, chunk_accesses, AddrCodec::Split)
    }

    /// Shared chunk-indexed writer: magic and per-chunk address codec
    /// differ, everything else is the common v2.1 container.
    fn write_chunked<W: Write>(
        &self,
        writer: W,
        chunk_accesses: u32,
        codec: AddrCodec,
    ) -> io::Result<()> {
        assert!(chunk_accesses > 0, "chunk size must be positive");
        let accesses = self.accesses();
        let ca = u64::from(chunk_accesses);
        let chunk_count = accesses.div_ceil(ca);
        let mut out = ChunkedWriter::new(writer);
        out.put(match codec {
            AddrCodec::Varint => MAGIC_V21,
            AddrCodec::Split => MAGIC_V22,
        })?;
        out.put_u64(accesses)?;
        out.put_u64(self.region_events().len() as u64)?;
        out.put_u64(chunk_count)?;
        out.put_u32(chunk_accesses)?;
        out.put_u32(codec.id())?; // the v2.1 reserved word
        let mut index: Vec<(u64, u32, u32)> = Vec::with_capacity(chunk_count as usize);
        let mut offset = V21_HEADER_BYTES as u64;
        let mut encoded = Vec::new();
        let (addrs, values) = (self.addrs(), self.values());
        for chunk in 0..chunk_count {
            let lo = (chunk * ca) as usize;
            let hi = ((chunk + 1) * ca).min(accesses) as usize;
            let chunk_len = (hi - lo) as u32;
            encoded.clear();
            match codec {
                AddrCodec::Varint => crate::varint::encode_addr_chunk(&addrs[lo..hi], &mut encoded),
                AddrCodec::Split => {
                    crate::varint::encode_addr_chunk_split(&addrs[lo..hi], &mut encoded)
                }
            }
            let addr_bytes = encoded.len() as u32;
            index.push((offset, chunk_len, addr_bytes));
            out.put_u32(chunk_len)?;
            out.put_u32(addr_bytes)?;
            out.put(&encoded)?;
            for &v in &values[lo..hi] {
                out.put_u32(v)?;
            }
            offset += 8 + u64::from(addr_bytes) + 4 * u64::from(chunk_len);
        }
        for event in self.region_events() {
            out.put_u64(event.pos)?;
            out.put(&[u8::from(event.is_alloc), kind_to_byte(event.region.kind)])?;
            out.put_u32(event.region.base)?;
            out.put_u32(event.region.words)?;
        }
        let index_offset = offset + (self.region_events().len() * REGION_RECORD_BYTES) as u64;
        for (payload_offset, chunk_len, addr_bytes) in index {
            out.put_u64(payload_offset)?;
            out.put_u32(chunk_len)?;
            out.put_u32(addr_bytes)?;
        }
        out.put_u64(index_offset)?;
        out.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::CountingSink;
    use crate::bus::{Bus, BusExt};
    use crate::traced::TracedMemory;

    fn sample_trace() -> Trace {
        let mut buf = crate::trace::TraceBuffer::new();
        {
            let mut m = TracedMemory::new(&mut buf);
            let a = m.alloc(4);
            m.fill(a, 4, 7);
            let f = m.push_frame(2);
            m.store(f, 9);
            let _ = m.load(a);
            m.pop_frame();
            m.free(a);
        }
        buf.into_trace()
    }

    #[test]
    fn round_trip_preserves_every_event() {
        let trace = sample_trace();
        let mut bytes = Vec::new();
        trace.write_to(&mut bytes).unwrap();
        let loaded = Trace::read_from(bytes.as_slice()).unwrap();
        assert_eq!(loaded.events(), trace.events());
        assert_eq!(loaded.accesses(), trace.accesses());
        // Replays identically.
        let mut a = CountingSink::new();
        let mut b = CountingSink::new();
        trace.replay(&mut a);
        loaded.replay(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn v2_round_trip_preserves_columns() {
        let packed = PackedTrace::from_trace(&sample_trace());
        let mut bytes = Vec::new();
        packed.write_to(&mut bytes).unwrap();
        assert_eq!(bytes.len() as u64, packed.encoded_len());
        assert_eq!(&bytes[..8], MAGIC_V2);
        let loaded = PackedTrace::read_from(bytes.as_slice()).unwrap();
        assert_eq!(loaded.addrs(), packed.addrs());
        assert_eq!(loaded.values(), packed.values());
        assert_eq!(loaded.region_events(), packed.region_events());
    }

    #[test]
    fn formats_cross_load() {
        let trace = sample_trace();
        // v1 bytes load into a PackedTrace…
        let mut v1 = Vec::new();
        trace.write_to(&mut v1).unwrap();
        let packed = PackedTrace::read_from(v1.as_slice()).unwrap();
        assert_eq!(packed.accesses(), trace.accesses());
        // …and v2 bytes load into a legacy Trace.
        let mut v2 = Vec::new();
        packed.write_to(&mut v2).unwrap();
        let unpacked = Trace::read_from(v2.as_slice()).unwrap();
        assert_eq!(unpacked.events(), trace.events());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = Trace::read_from(&b"NOTATRACE"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let err = PackedTrace::read_from(&b"NOTATRACE"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_stream_is_an_error() {
        let trace = sample_trace();
        let mut v1 = Vec::new();
        trace.write_to(&mut v1).unwrap();
        v1.truncate(v1.len() - 3);
        assert!(Trace::read_from(v1.as_slice()).is_err());

        let mut v2 = Vec::new();
        PackedTrace::from_trace(&trace).write_to(&mut v2).unwrap();
        v2.truncate(v2.len() - 3);
        assert!(PackedTrace::read_from(v2.as_slice()).is_err());
    }

    #[test]
    fn bad_tag_is_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC_V1);
        bytes.extend_from_slice(&1u64.to_le_bytes());
        bytes.push(99); // invalid tag
        let err = Trace::read_from(bytes.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn bad_v2_region_flag_is_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC_V2);
        bytes.extend_from_slice(&0u64.to_le_bytes()); // no accesses
        bytes.extend_from_slice(&1u64.to_le_bytes()); // one region event
        bytes.extend_from_slice(&0u64.to_le_bytes()); // pos
        bytes.push(7); // invalid is_alloc flag
        bytes.push(0);
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&4u32.to_le_bytes());
        let err = PackedTrace::read_from(bytes.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn empty_trace_round_trips() {
        let trace = Trace::from_events(vec![]);
        let mut bytes = Vec::new();
        trace.write_to(&mut bytes).unwrap();
        let loaded = Trace::read_from(bytes.as_slice()).unwrap();
        assert!(loaded.is_empty());

        let packed = PackedTrace::from_trace(&trace);
        let mut bytes = Vec::new();
        packed.write_to(&mut bytes).unwrap();
        assert!(PackedTrace::read_from(bytes.as_slice()).unwrap().is_empty());
    }

    #[cfg(not(feature = "seeded-bugs"))]
    #[test]
    fn v21_round_trips_across_chunk_sizes() {
        let packed = PackedTrace::from_trace(&sample_trace());
        for chunk_accesses in [1u32, 2, 3, 7, CHUNK_ACCESSES] {
            let mut bytes = Vec::new();
            packed.write_v21_with(&mut bytes, chunk_accesses).unwrap();
            assert_eq!(&bytes[..8], MAGIC_V21);
            let loaded = PackedTrace::read_from(bytes.as_slice()).unwrap();
            assert_eq!(loaded.addrs(), packed.addrs(), "chunk {chunk_accesses}");
            assert_eq!(loaded.values(), packed.values(), "chunk {chunk_accesses}");
            assert_eq!(loaded.region_events(), packed.region_events());
            // The legacy reader sniffs v2.1 too.
            let unpacked = Trace::read_from(bytes.as_slice()).unwrap();
            assert_eq!(unpacked.events(), packed.to_trace().events());
        }
    }

    #[cfg(not(feature = "seeded-bugs"))]
    #[test]
    fn v21_empty_trace_round_trips() {
        let packed = PackedTrace::from_trace(&Trace::from_events(vec![]));
        let mut bytes = Vec::new();
        packed.write_v21_to(&mut bytes).unwrap();
        assert_eq!(bytes.len(), V21_HEADER_BYTES + 8);
        assert!(PackedTrace::read_from(bytes.as_slice()).unwrap().is_empty());
    }

    #[cfg(not(feature = "seeded-bugs"))]
    #[test]
    fn v21_is_smaller_than_v2_on_local_streams() {
        let mut events = Vec::new();
        for i in 0u32..20_000 {
            events.push(TraceEvent::Access(Access::store((i % 4096) * 4, i)));
        }
        let packed = PackedTrace::from_trace(&Trace::from_events(events));
        let mut v2 = Vec::new();
        packed.write_to(&mut v2).unwrap();
        let mut v21 = Vec::new();
        packed.write_v21_to(&mut v21).unwrap();
        // The addr column collapses to ~1–2 varint bytes per access.
        assert!(
            v21.len() * 10 < v2.len() * 8,
            "v2.1 {} vs v2 {}",
            v21.len(),
            v2.len()
        );
        let loaded = PackedTrace::read_from(v21.as_slice()).unwrap();
        assert_eq!(loaded.addrs(), packed.addrs());
        assert_eq!(loaded.values(), packed.values());
    }

    #[cfg(not(feature = "seeded-bugs"))]
    #[test]
    fn v22_round_trips_across_chunk_sizes() {
        let packed = PackedTrace::from_trace(&sample_trace());
        for chunk_accesses in [1u32, 2, 3, 7, CHUNK_ACCESSES] {
            let mut bytes = Vec::new();
            packed.write_v22_with(&mut bytes, chunk_accesses).unwrap();
            assert_eq!(&bytes[..8], MAGIC_V22);
            assert_eq!(bytes[36..40], 1u32.to_le_bytes()); // codec id
            let loaded = PackedTrace::read_from(bytes.as_slice()).unwrap();
            assert_eq!(loaded.addrs(), packed.addrs(), "chunk {chunk_accesses}");
            assert_eq!(loaded.values(), packed.values(), "chunk {chunk_accesses}");
            assert_eq!(loaded.region_events(), packed.region_events());
            // The legacy reader sniffs v2.2 too.
            let unpacked = Trace::read_from(bytes.as_slice()).unwrap();
            assert_eq!(unpacked.events(), packed.to_trace().events());
        }
    }

    #[cfg(not(feature = "seeded-bugs"))]
    #[test]
    fn v22_empty_trace_round_trips() {
        let packed = PackedTrace::from_trace(&Trace::from_events(vec![]));
        let mut bytes = Vec::new();
        packed.write_v22_to(&mut bytes).unwrap();
        assert_eq!(bytes.len(), V21_HEADER_BYTES + 8);
        assert!(PackedTrace::read_from(bytes.as_slice()).unwrap().is_empty());
    }

    #[cfg(not(feature = "seeded-bugs"))]
    #[test]
    fn v21_and_v22_transcode_to_identical_traces() {
        let mut events = Vec::new();
        for i in 0u32..20_000 {
            events.push(TraceEvent::Access(Access::store((i % 4096) * 4, i)));
        }
        let packed = PackedTrace::from_trace(&Trace::from_events(events));
        let mut v21 = Vec::new();
        packed.write_v21_to(&mut v21).unwrap();
        let mut v22 = Vec::new();
        packed.write_v22_to(&mut v22).unwrap();
        // Transcode each through the sniffing reader and re-encode the
        // other way: both directions are lossless.
        let from_v21 = PackedTrace::read_from(v21.as_slice()).unwrap();
        let mut v22_again = Vec::new();
        from_v21.write_v22_to(&mut v22_again).unwrap();
        assert_eq!(v22, v22_again);
        let from_v22 = PackedTrace::read_from(v22.as_slice()).unwrap();
        let mut v21_again = Vec::new();
        from_v22.write_v21_to(&mut v21_again).unwrap();
        assert_eq!(v21, v21_again);
        // Split trades ≤ 25% addr-column growth for decode speed; the
        // whole file stays well under the raw v2 form.
        let mut v2 = Vec::new();
        packed.write_to(&mut v2).unwrap();
        assert!(
            v22.len() < v2.len(),
            "v2.2 {} vs v2 {}",
            v22.len(),
            v2.len()
        );
    }

    #[test]
    fn v22_codec_id_mismatch_is_rejected() {
        let packed = PackedTrace::from_trace(&sample_trace());
        let mut bytes = Vec::new();
        packed.write_v22_with(&mut bytes, 4).unwrap();
        // Zero the codec word: the v2.2 magic now disagrees with it.
        bytes[36..40].copy_from_slice(&0u32.to_le_bytes());
        let err = PackedTrace::read_from(bytes.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("codec id"), "{err}");
    }

    #[cfg(not(feature = "seeded-bugs"))]
    #[test]
    fn v21_ignores_the_reserved_word() {
        // A v2.1 file whose reserved word is nonzero still reads: the
        // word only became meaningful under the v2.2 magic.
        let packed = PackedTrace::from_trace(&sample_trace());
        let mut bytes = Vec::new();
        packed.write_v21_with(&mut bytes, 4).unwrap();
        bytes[36..40].copy_from_slice(&7u32.to_le_bytes());
        assert!(PackedTrace::read_from(bytes.as_slice()).is_ok());
    }

    #[test]
    fn v21_inconsistent_chunk_geometry_is_rejected() {
        let packed = PackedTrace::from_trace(&sample_trace());
        let mut bytes = Vec::new();
        packed.write_v21_with(&mut bytes, 4).unwrap();
        // Corrupt the chunk_count field (offset 24) to a huge value:
        // the reader must reject it from the header alone, not try to
        // allocate or read that many chunks.
        bytes[24..32].copy_from_slice(&u64::MAX.to_le_bytes());
        let err = PackedTrace::read_from(bytes.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // And a zero chunk size with nonzero accesses.
        let mut bytes2 = Vec::new();
        packed.write_v21_with(&mut bytes2, 4).unwrap();
        bytes2[32..36].copy_from_slice(&0u32.to_le_bytes());
        assert!(PackedTrace::read_from(bytes2.as_slice()).is_err());
    }

    #[test]
    fn large_trace_crosses_chunk_boundaries() {
        // > 64 KiB in both formats so the chunk buffer flushes mid-column.
        let mut events = Vec::new();
        for i in 0u32..20_000 {
            events.push(TraceEvent::Access(Access::store((i % 4096) * 4, i)));
        }
        let trace = Trace::from_events(events);
        let mut v1 = Vec::new();
        trace.write_to(&mut v1).unwrap();
        assert!(v1.len() > CHUNK_BYTES);
        assert_eq!(
            Trace::read_from(v1.as_slice()).unwrap().events(),
            trace.events()
        );

        let packed = PackedTrace::from_trace(&trace);
        let mut v2 = Vec::new();
        packed.write_to(&mut v2).unwrap();
        assert!(v2.len() > CHUNK_BYTES);
        // Access-dominated traces shrink to ~8/9 of the v1 encoding.
        assert!(
            v2.len() < v1.len(),
            "v2 ({}) >= v1 ({})",
            v2.len(),
            v1.len()
        );
        let loaded = PackedTrace::read_from(v2.as_slice()).unwrap();
        assert_eq!(loaded.addrs(), packed.addrs());
        assert_eq!(loaded.values(), packed.values());
    }
}
