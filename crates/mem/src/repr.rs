//! Runtime-selectable trace storage representation.
//!
//! The experiment harness defaults to the columnar [`PackedTrace`] hot
//! path but keeps the array-of-structs [`Trace`] walkable behind the
//! same API, so A/B runs (`--legacy-trace` in the `experiments` CLI,
//! `FVL_TRACE_REPR=legacy` in CI) can prove the two layouts produce
//! byte-identical results while measuring their footprint and speed
//! difference.

use crate::access::{Access, AccessSink};
use crate::packed::{BroadcastReplay, PackedTrace};
use crate::trace::Trace;

/// Which storage layout a [`TraceRepr`] should use.
#[derive(Copy, Clone, Eq, PartialEq, Debug, Default)]
pub enum TraceReprKind {
    /// Columnar [`PackedTrace`] (the default): ~8 bytes per access,
    /// branchless replay, broadcast-capable.
    #[default]
    Packed,
    /// Array-of-structs [`Trace`]: 16 bytes per event, kept for A/B
    /// comparison and as the recording format.
    Legacy,
}

impl TraceReprKind {
    /// Short lower-case label (`"packed"` / `"legacy"`) used in logs
    /// and the timing metrics export.
    pub fn label(self) -> &'static str {
        match self {
            TraceReprKind::Packed => "packed",
            TraceReprKind::Legacy => "legacy",
        }
    }

    /// Parses a label as produced by [`TraceReprKind::label`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "packed" => Some(TraceReprKind::Packed),
            "legacy" => Some(TraceReprKind::Legacy),
            _ => None,
        }
    }
}

/// A recorded trace stored in either layout, exposing the replay API of
/// both [`Trace`] and [`PackedTrace`] so simulation code is agnostic to
/// the representation it runs over.
#[derive(Clone, Debug)]
pub enum TraceRepr {
    /// Array-of-structs event log.
    Legacy(Trace),
    /// Columnar packed log.
    Packed(PackedTrace),
}

impl TraceRepr {
    /// Stores `trace` in the layout selected by `kind` (packing copies
    /// the events into columns; legacy takes the log as-is).
    pub fn from_trace(trace: Trace, kind: TraceReprKind) -> Self {
        match kind {
            TraceReprKind::Packed => TraceRepr::Packed(PackedTrace::from_trace(&trace)),
            TraceReprKind::Legacy => TraceRepr::Legacy(trace),
        }
    }

    /// The layout this trace is stored in.
    pub fn kind(&self) -> TraceReprKind {
        match self {
            TraceRepr::Legacy(_) => TraceReprKind::Legacy,
            TraceRepr::Packed(_) => TraceReprKind::Packed,
        }
    }

    /// Number of access events.
    pub fn accesses(&self) -> u64 {
        match self {
            TraceRepr::Legacy(t) => t.accesses(),
            TraceRepr::Packed(t) => t.accesses(),
        }
    }

    /// Number of events of any kind.
    pub fn len(&self) -> usize {
        match self {
            TraceRepr::Legacy(t) => t.len(),
            TraceRepr::Packed(t) => t.len(),
        }
    }

    /// Whether the trace holds no events.
    pub fn is_empty(&self) -> bool {
        match self {
            TraceRepr::Legacy(t) => t.is_empty(),
            TraceRepr::Packed(t) => t.is_empty(),
        }
    }

    /// Heap bytes resident for the event log in its current layout.
    pub fn approx_bytes(&self) -> usize {
        match self {
            TraceRepr::Legacy(t) => std::mem::size_of_val(t.events()),
            TraceRepr::Packed(t) => t.approx_bytes(),
        }
    }

    /// Resident bytes per event (16 for legacy, ~8 for packed).
    pub fn bytes_per_event(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.approx_bytes() as f64 / self.len() as f64
        }
    }

    /// Iterates over access events only.
    pub fn iter_accesses(&self) -> Box<dyn Iterator<Item = Access> + '_> {
        match self {
            TraceRepr::Legacy(t) => Box::new(t.iter_accesses()),
            TraceRepr::Packed(t) => Box::new(t.iter_accesses()),
        }
    }

    /// Replays the trace into `sink`; see [`Trace::replay_into`].
    pub fn replay_into<S: AccessSink + ?Sized>(&self, sink: &mut S) {
        match self {
            TraceRepr::Legacy(t) => t.replay_into(sink),
            TraceRepr::Packed(t) => t.replay_into(sink),
        }
    }

    /// Dynamic-dispatch wrapper over [`TraceRepr::replay_into`].
    pub fn replay(&self, sink: &mut dyn AccessSink) {
        self.replay_into(sink);
    }

    /// Snapshot-emitting replay; see
    /// [`Trace::replay_with_snapshots_opts_into`].
    ///
    /// # Panics
    ///
    /// Panics if `sample_every` is zero.
    pub fn replay_with_snapshots_opts_into<S: AccessSink + ?Sized>(
        &self,
        sink: &mut S,
        sample_every: u64,
        track_heap_free: bool,
    ) {
        match self {
            TraceRepr::Legacy(t) => {
                t.replay_with_snapshots_opts_into(sink, sample_every, track_heap_free)
            }
            TraceRepr::Packed(t) => {
                t.replay_with_snapshots_opts_into(sink, sample_every, track_heap_free)
            }
        }
    }

    /// Snapshot-emitting replay with heap frees tracked; see
    /// [`Trace::replay_with_snapshots_into`].
    ///
    /// # Panics
    ///
    /// Panics if `sample_every` is zero.
    pub fn replay_with_snapshots_into<S: AccessSink + ?Sized>(
        &self,
        sink: &mut S,
        sample_every: u64,
    ) {
        self.replay_with_snapshots_opts_into(sink, sample_every, true);
    }

    /// Dynamic-dispatch wrapper over
    /// [`TraceRepr::replay_with_snapshots_into`].
    ///
    /// # Panics
    ///
    /// Panics if `sample_every` is zero.
    pub fn replay_with_snapshots(&self, sink: &mut dyn AccessSink, sample_every: u64) {
        self.replay_with_snapshots_opts_into(sink, sample_every, true);
    }

    /// Dynamic-dispatch wrapper over
    /// [`TraceRepr::replay_with_snapshots_opts_into`].
    ///
    /// # Panics
    ///
    /// Panics if `sample_every` is zero.
    pub fn replay_with_snapshots_opts(
        &self,
        sink: &mut dyn AccessSink,
        sample_every: u64,
        track_heap_free: bool,
    ) {
        self.replay_with_snapshots_opts_into(sink, sample_every, track_heap_free);
    }

    /// One pass feeding every sink in `sinks`; see
    /// [`PackedTrace::broadcast_into`]. The legacy layout broadcasts
    /// from its event log (still one walk instead of N).
    pub fn broadcast_into<S: AccessSink>(&self, sinks: &mut [S]) {
        match self {
            TraceRepr::Legacy(t) => t.broadcast_replay(sinks),
            TraceRepr::Packed(t) => t.broadcast_into(sinks),
        }
    }

    /// Heterogeneous-sink broadcast; see [`PackedTrace::broadcast_dyn`].
    pub fn broadcast_dyn(&self, sinks: &mut [&mut dyn AccessSink]) {
        self.broadcast_into(sinks);
    }
}

impl BroadcastReplay for TraceRepr {
    fn broadcast_replay<S: AccessSink>(&self, sinks: &mut [S]) {
        self.broadcast_into(sinks);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::CountingSink;
    use crate::bus::{Bus, BusExt};
    use crate::trace::TraceBuffer;
    use crate::traced::TracedMemory;

    fn record() -> Trace {
        let mut buf = TraceBuffer::new();
        {
            let mut m = TracedMemory::new(&mut buf);
            let a = m.alloc(3);
            m.fill(a, 3, 5);
            let _ = m.load(a);
            m.free(a);
        }
        buf.into_trace()
    }

    #[test]
    fn kinds_round_trip_labels() {
        for kind in [TraceReprKind::Packed, TraceReprKind::Legacy] {
            assert_eq!(TraceReprKind::parse(kind.label()), Some(kind));
        }
        assert_eq!(TraceReprKind::parse("nope"), None);
        assert_eq!(TraceReprKind::default(), TraceReprKind::Packed);
    }

    #[test]
    fn both_layouts_replay_identically() {
        let trace = record();
        let legacy = TraceRepr::from_trace(trace.clone(), TraceReprKind::Legacy);
        let packed = TraceRepr::from_trace(trace, TraceReprKind::Packed);
        assert_eq!(legacy.kind(), TraceReprKind::Legacy);
        assert_eq!(packed.kind(), TraceReprKind::Packed);
        assert_eq!(legacy.accesses(), packed.accesses());
        assert_eq!(legacy.len(), packed.len());
        assert!(!legacy.is_empty());

        let mut a = CountingSink::new();
        legacy.replay_into(&mut a);
        let mut b = CountingSink::new();
        packed.replay(&mut b);
        assert_eq!(a, b);

        let mut a = CountingSink::new();
        legacy.replay_with_snapshots_opts_into(&mut a, 2, false);
        let mut b = CountingSink::new();
        packed.replay_with_snapshots_opts(&mut b, 2, false);
        assert_eq!(a, b);

        assert_eq!(
            legacy.iter_accesses().collect::<Vec<_>>(),
            packed.iter_accesses().collect::<Vec<_>>()
        );

        let mut legacy_sinks = vec![CountingSink::new(); 3];
        legacy.broadcast_into(&mut legacy_sinks);
        let mut packed_sinks = vec![CountingSink::new(); 3];
        packed.broadcast_into(&mut packed_sinks);
        assert_eq!(legacy_sinks, packed_sinks);
    }

    #[test]
    fn packed_layout_halves_resident_bytes() {
        let mut buf = TraceBuffer::new();
        {
            let mut m = TracedMemory::new(&mut buf);
            let a = m.alloc(32);
            for round in 0..16u32 {
                m.fill(a, 32, round);
            }
            m.free(a);
        }
        let trace = buf.into_trace();
        let legacy = TraceRepr::from_trace(trace.clone(), TraceReprKind::Legacy);
        let packed = TraceRepr::from_trace(trace, TraceReprKind::Packed);
        assert!(packed.approx_bytes() < legacy.approx_bytes());
        assert!(
            packed.bytes_per_event() <= 8.5,
            "{}",
            packed.bytes_per_event()
        );
        assert!(legacy.bytes_per_event() >= 16.0);
    }
}
