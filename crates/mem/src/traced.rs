//! The canonical tracing [`Bus`] implementation.

use crate::access::AccessSink;
use crate::access::{Access, AccessKind};
use crate::alloc::{HeapAllocator, StackAllocator};
use crate::bus::Bus;
use crate::layout::{Addr, Region, RegionKind, Word, GLOBAL_BASE, HEAP_BASE, WORD_BYTES};
use crate::live::LiveSet;
use crate::sim_memory::SimMemory;
use crate::snapshot::MemorySnapshot;
use std::fmt;

/// A simulated process memory that forwards every event to an
/// [`AccessSink`].
///
/// `TracedMemory` owns the backing store, the live-location set, and the
/// heap/stack allocators; the sink is borrowed so callers keep ownership
/// of their profilers and cache simulators.
///
/// # Example
///
/// ```
/// use fvl_mem::{Bus, CountingSink, TracedMemory};
///
/// let mut sink = CountingSink::default();
/// let mut mem = TracedMemory::new(&mut sink);
/// let frame = mem.push_frame(2);
/// mem.store(frame, 1);
/// mem.pop_frame();
/// mem.finish();
/// assert_eq!(sink.stores(), 1);
/// ```
pub struct TracedMemory<'a> {
    mem: SimMemory,
    live: LiveSet,
    heap: HeapAllocator,
    stack: StackAllocator,
    global_next: Addr,
    sink: &'a mut dyn AccessSink,
    access_count: u64,
    sample_every: Option<u64>,
    next_sample: u64,
    /// When `false`, heap frees do not clear the live set — the paper's
    /// fidelity mode ("we were able to track deallocations of stack memory
    /// but not that of heap memory").
    track_heap_free: bool,
    finished: bool,
}

impl<'a> TracedMemory<'a> {
    /// Creates a traced memory without snapshot sampling.
    pub fn new(sink: &'a mut dyn AccessSink) -> Self {
        TracedMemory {
            mem: SimMemory::new(),
            live: LiveSet::new(),
            heap: HeapAllocator::new(),
            stack: StackAllocator::new(),
            global_next: GLOBAL_BASE,
            sink,
            access_count: 0,
            sample_every: None,
            next_sample: u64::MAX,
            track_heap_free: true,
            finished: false,
        }
    }

    /// Creates a traced memory that emits a [`MemorySnapshot`] every
    /// `every` accesses (the analogue of the paper's 10M-instruction
    /// occurrence sampling).
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn with_sampling(sink: &'a mut dyn AccessSink, every: u64) -> Self {
        assert!(every > 0, "sampling interval must be positive");
        let mut t = Self::new(sink);
        t.sample_every = Some(every);
        t.next_sample = every;
        t
    }

    /// Selects whether heap frees remove locations from the live set.
    ///
    /// `true` (default) is the ideal semantics; `false` reproduces the
    /// paper's measurement limitation.
    pub fn set_heap_free_tracking(&mut self, track: bool) {
        self.track_heap_free = track;
    }

    /// The backing store (for end-of-run analyses).
    pub fn memory(&self) -> &SimMemory {
        &self.mem
    }

    /// The current interesting-location set.
    pub fn live(&self) -> &LiveSet {
        &self.live
    }

    /// The heap allocator (for accounting).
    pub fn heap(&self) -> &HeapAllocator {
        &self.heap
    }

    /// The stack allocator (for accounting).
    pub fn stack(&self) -> &StackAllocator {
        &self.stack
    }

    /// Takes a snapshot now and hands it to the sink.
    pub fn snapshot_now(&mut self) {
        let snap = MemorySnapshot::new(&self.mem, &self.live, self.access_count);
        self.sink.on_snapshot(&snap);
    }

    /// Signals end of run to the sink (calls [`AccessSink::on_finish`]).
    /// Idempotent.
    pub fn finish(&mut self) {
        if !self.finished {
            self.finished = true;
            self.sink.on_finish();
        }
    }

    #[inline]
    fn record(&mut self, addr: Addr, value: Word, kind: AccessKind) {
        self.live.mark(addr);
        self.access_count += 1;
        self.sink.on_access(Access { addr, value, kind });
        if self.access_count >= self.next_sample {
            let every = self.sample_every.expect("sampling misconfigured");
            self.next_sample = self.access_count + every;
            let snap = MemorySnapshot::new(&self.mem, &self.live, self.access_count);
            self.sink.on_snapshot(&snap);
        }
    }
}

impl Bus for TracedMemory<'_> {
    #[inline]
    fn load(&mut self, addr: Addr) -> Word {
        assert_eq!(addr % WORD_BYTES, 0, "unaligned load at {addr:#x}");
        let value = self.mem.read(addr);
        self.record(addr, value, AccessKind::Load);
        value
    }

    #[inline]
    fn store(&mut self, addr: Addr, value: Word) {
        assert_eq!(addr % WORD_BYTES, 0, "unaligned store at {addr:#x}");
        self.mem.write(addr, value);
        self.record(addr, value, AccessKind::Store);
    }

    fn alloc(&mut self, words: u32) -> Addr {
        // Reserve two extra words for the allocator's chunk header, as a
        // real malloc does. The header accesses below are genuine traced
        // accesses: the *load* models the free-list/boundary-tag check a
        // real allocator performs before claiming the chunk, and matters
        // to cache studies because it makes the first touch of a fresh
        // heap line a read, not a write.
        let region = self.heap.alloc(words + 2);
        self.sink.on_alloc(region);
        let header = region.base;
        let _old = self.load(header);
        self.store(header, (region.words << 8) | 1);
        header + 2 * WORD_BYTES
    }

    fn free(&mut self, base: Addr) {
        let header = base - 2 * WORD_BYTES;
        let region = self.heap.free(header);
        // Read the chunk header and clear its in-use bit, as `free(3)`
        // does before threading the chunk onto a free list.
        let old = self.load(header);
        self.store(header, old & !1);
        if self.track_heap_free {
            self.live.clear_region(&region);
        }
        self.sink.on_free(region);
    }

    fn push_frame(&mut self, words: u32) -> Addr {
        let region = self.stack.push(words);
        self.sink.on_alloc(region);
        region.base
    }

    fn pop_frame(&mut self) {
        let region = self.stack.pop();
        self.live.clear_region(&region);
        self.sink.on_free(region);
    }

    fn global(&mut self, words: u32) -> Addr {
        assert!(words > 0, "zero-sized global allocation");
        let base = self.global_next;
        let end = base as u64 + words as u64 * WORD_BYTES as u64;
        assert!(
            end <= HEAP_BASE as u64,
            "simulated global segment exhausted"
        );
        self.global_next = end as Addr;
        self.sink
            .on_alloc(Region::new(base, words, RegionKind::Global));
        base
    }

    #[inline]
    fn accesses(&self) -> u64 {
        self.access_count
    }
}

impl fmt::Debug for TracedMemory<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TracedMemory")
            .field("accesses", &self.access_count)
            .field("live_locations", &self.live.len())
            .field("resident_pages", &self.mem.resident_pages())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::CountingSink;
    use crate::bus::BusExt;

    #[test]
    fn loads_and_stores_reach_the_sink_with_values() {
        struct Recorder(Vec<Access>);
        impl AccessSink for Recorder {
            fn on_access(&mut self, a: Access) {
                self.0.push(a);
            }
        }
        let mut rec = Recorder(Vec::new());
        {
            let mut m = TracedMemory::new(&mut rec);
            let a = m.alloc(2);
            m.store(a, 5);
            assert_eq!(m.load(a), 5);
            assert_eq!(m.load(m.idx(a, 1)), 0);
            assert_eq!(m.accesses(), 5, "2 header accesses + 3 program accesses");
        }
        assert_eq!(rec.0.len(), 5);
        // Malloc semantics: the first touch of a fresh chunk is a load of
        // its header, then the in-use header store.
        assert_eq!(rec.0[0].kind, AccessKind::Load);
        assert_eq!(rec.0[0].value, 0);
        assert_eq!(rec.0[1].kind, AccessKind::Store);
        assert_eq!(rec.0[1].addr, rec.0[0].addr);
        assert_eq!(rec.0[2].kind, AccessKind::Store);
        assert_eq!(rec.0[2].value, 5);
        assert_eq!(rec.0[2].addr, rec.0[0].addr + 8);
        assert_eq!(rec.0[3], Access::load(rec.0[2].addr, 5));
        assert_eq!(rec.0[4].value, 0);
    }

    #[test]
    fn sampling_fires_every_n_accesses() {
        let mut sink = CountingSink::new();
        {
            let mut m = TracedMemory::with_sampling(&mut sink, 4);
            let a = m.global(16);
            for i in 0..10 {
                m.store_idx(a, i, i);
            }
            m.finish();
        }
        assert_eq!(sink.snapshots(), 2); // after accesses 4 and 8
        assert!(sink.finished());
    }

    #[test]
    fn stack_pop_clears_live_but_heap_mode_is_configurable() {
        let mut sink = CountingSink::new();
        let mut m = TracedMemory::new(&mut sink);
        let f = m.push_frame(2);
        m.store(f, 1);
        assert!(m.live().contains(f));
        m.pop_frame();
        assert!(!m.live().contains(f));

        m.set_heap_free_tracking(false);
        let h = m.alloc(2);
        m.store(h, 9);
        m.free(h);
        assert!(
            m.live().contains(h),
            "paper mode keeps freed heap words live"
        );

        m.set_heap_free_tracking(true);
        let h2 = m.alloc(2);
        m.store(h2, 9);
        m.free(h2);
        assert!(!m.live().contains(h2));
    }

    #[test]
    fn globals_are_disjoint_and_reported() {
        let mut sink = CountingSink::new();
        let mut m = TracedMemory::new(&mut sink);
        let g1 = m.global(4);
        let g2 = m.global(4);
        assert_eq!(g2, g1 + 16);
        assert_eq!(sink.allocs(), 2);
    }

    #[test]
    fn finish_is_idempotent() {
        let mut sink = CountingSink::new();
        let mut m = TracedMemory::new(&mut sink);
        m.finish();
        m.finish();
        assert!(sink.finished());
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_load_panics() {
        let mut sink = CountingSink::new();
        let mut m = TracedMemory::new(&mut sink);
        let _ = m.load(3);
    }
}
