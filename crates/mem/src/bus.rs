//! The memory interface workloads program against.

use crate::layout::{Addr, Word, WORD_BYTES};

/// Word-granularity memory bus with allocation support.
///
/// Every workload in `fvl-workloads` is written against `&mut dyn Bus`, so
/// the same program can run over a tracing memory, a replaying stub, or a
/// test double. All addresses are byte addresses and must be 4-byte
/// aligned.
///
/// Traffic through [`Bus::load`] and [`Bus::store`] is exactly the traffic
/// the paper studies; allocation calls are metadata (they generate no
/// memory accesses themselves, like `sbrk`-level bookkeeping).
pub trait Bus {
    /// Loads the word at `addr`, recording the access.
    fn load(&mut self, addr: Addr) -> Word;

    /// Stores `value` at `addr`, recording the access.
    fn store(&mut self, addr: Addr, value: Word);

    /// Allocates `words` words on the simulated heap; returns the base
    /// address. The actual reservation may be rounded up to a size class.
    fn alloc(&mut self, words: u32) -> Addr;

    /// Frees the heap allocation at `base`.
    ///
    /// # Panics
    ///
    /// Implementations panic on double free or foreign pointers.
    fn free(&mut self, base: Addr);

    /// Pushes a stack frame of `words` words; returns its base address.
    fn push_frame(&mut self, words: u32) -> Addr;

    /// Pops the most recent stack frame.
    fn pop_frame(&mut self);

    /// Reserves `words` words of never-freed global/static storage.
    fn global(&mut self, words: u32) -> Addr;

    /// Number of accesses (loads + stores) performed so far.
    fn accesses(&self) -> u64;
}

/// Byte address of element `index` in a word array starting at `base`.
#[inline]
pub(crate) fn word_at(base: Addr, index: u32) -> Addr {
    base + index * WORD_BYTES
}

/// Convenience operations over any [`Bus`].
///
/// These helpers expand into plain word loads/stores, so every byte of
/// data they move is visible to the trace.
pub trait BusExt: Bus {
    /// Address of element `index` of a word array at `base` (no access).
    #[inline]
    fn idx(&self, base: Addr, index: u32) -> Addr {
        word_at(base, index)
    }

    /// Loads element `index` of the word array at `base`.
    #[inline]
    fn load_idx(&mut self, base: Addr, index: u32) -> Word {
        self.load(word_at(base, index))
    }

    /// Stores into element `index` of the word array at `base`.
    #[inline]
    fn store_idx(&mut self, base: Addr, index: u32, value: Word) {
        self.store(word_at(base, index), value);
    }

    /// Stores `value` into `words` consecutive words starting at `base`.
    fn fill(&mut self, base: Addr, words: u32, value: Word) {
        for i in 0..words {
            self.store(word_at(base, i), value);
        }
    }

    /// Loads an `f32` stored as its IEEE-754 bit pattern.
    #[inline]
    fn load_f32(&mut self, addr: Addr) -> f32 {
        f32::from_bits(self.load(addr))
    }

    /// Stores an `f32` as its IEEE-754 bit pattern.
    ///
    /// Negative zero is normalised to positive zero so that "zero" is a
    /// single frequent value, as it is in compiled Fortran/C programs.
    #[inline]
    fn store_f32(&mut self, addr: Addr, value: f32) {
        let v = if value == 0.0 { 0.0f32 } else { value };
        self.store(addr, v.to_bits());
    }

    /// Stores `bytes` big-endian-packed, 4 per word, padding the final
    /// word with `pad`. Returns the number of words written.
    ///
    /// Packing text this way reproduces the paper's perl observation that
    /// space-padded character data (e.g. `0x78202020`) becomes a frequent
    /// value.
    fn store_bytes(&mut self, base: Addr, bytes: &[u8], pad: u8) -> u32 {
        let words = (bytes.len() as u32).div_ceil(WORD_BYTES);
        for w in 0..words {
            let mut v: Word = 0;
            for b in 0..4 {
                let i = (w * 4 + b) as usize;
                let byte = bytes.get(i).copied().unwrap_or(pad);
                v = (v << 8) | byte as Word;
            }
            self.store(word_at(base, w), v);
        }
        words
    }

    /// Loads `words` words starting at `base` into a `Vec`.
    fn load_block(&mut self, base: Addr, words: u32) -> Vec<Word> {
        (0..words).map(|i| self.load(word_at(base, i))).collect()
    }

    /// Copies `words` words from `src` to `dst` (load + store per word).
    fn copy_words(&mut self, src: Addr, dst: Addr, words: u32) {
        for i in 0..words {
            let v = self.load(word_at(src, i));
            self.store(word_at(dst, i), v);
        }
    }
}

impl<B: Bus + ?Sized> BusExt for B {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::NullSink;
    use crate::traced::TracedMemory;

    #[test]
    fn fill_and_load_block() {
        let mut sink = NullSink;
        let mut m = TracedMemory::new(&mut sink);
        let a = m.alloc(8);
        m.fill(a, 8, 7);
        assert_eq!(m.load_block(a, 8), vec![7; 8]);
    }

    #[test]
    fn f32_round_trip_and_zero_normalisation() {
        let mut sink = NullSink;
        let mut m = TracedMemory::new(&mut sink);
        let a = m.alloc(2);
        m.store_f32(a, 1.5);
        assert_eq!(m.load_f32(a), 1.5);
        m.store_f32(m.idx(a, 1), -0.0);
        assert_eq!(m.load(m.idx(a, 1)), 0); // +0.0 bit pattern
    }

    #[test]
    fn store_bytes_packs_big_endian_with_padding() {
        let mut sink = NullSink;
        let mut m = TracedMemory::new(&mut sink);
        let a = m.alloc(4);
        let words = m.store_bytes(a, b"xx x", b' ');
        assert_eq!(words, 1);
        assert_eq!(m.load(a), 0x7878_2078);
        let words = m.store_bytes(a, b"x", b' ');
        assert_eq!(words, 1);
        assert_eq!(m.load(a), 0x7820_2020);
    }

    #[test]
    fn copy_words_copies() {
        let mut sink = NullSink;
        let mut m = TracedMemory::new(&mut sink);
        let src = m.alloc(4);
        let dst = m.alloc(4);
        for i in 0..4 {
            m.store_idx(src, i, i + 10);
        }
        m.copy_words(src, dst, 4);
        assert_eq!(m.load_block(dst, 4), vec![10, 11, 12, 13]);
    }
}
