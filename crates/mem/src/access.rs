//! Memory access events and their consumers.

use crate::layout::{Addr, Region, Word};
use crate::snapshot::MemorySnapshot;
use std::fmt;

/// Maximum accesses per [`AccessBlock`] delivered by the wide replay
/// path (the store mask is a `u64`, one bit per lane).
pub const ACCESS_BLOCK: usize = 64;

/// Whether an access reads or writes memory.
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug)]
pub enum AccessKind {
    /// A word load.
    Load,
    /// A word store.
    Store,
}

impl AccessKind {
    /// `true` for [`AccessKind::Store`].
    #[inline]
    pub fn is_store(self) -> bool {
        matches!(self, AccessKind::Store)
    }

    /// `true` for [`AccessKind::Load`].
    #[inline]
    pub fn is_load(self) -> bool {
        matches!(self, AccessKind::Load)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AccessKind::Load => "load",
            AccessKind::Store => "store",
        })
    }
}

/// One word-granularity memory access: the unit of the entire study.
///
/// For a load, `value` is the value *returned* by memory; for a store it is
/// the value *written*. This matches the paper, which attributes each
/// access to the value involved in it.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub struct Access {
    /// Word-aligned byte address.
    pub addr: Addr,
    /// The 32-bit value involved in the access.
    pub value: Word,
    /// Load or store.
    pub kind: AccessKind,
}

impl Access {
    /// Convenience constructor for a load event.
    #[inline]
    pub fn load(addr: Addr, value: Word) -> Self {
        Access {
            addr,
            value,
            kind: AccessKind::Load,
        }
    }

    /// Convenience constructor for a store event.
    #[inline]
    pub fn store(addr: Addr, value: Word) -> Self {
        Access {
            addr,
            value,
            kind: AccessKind::Store,
        }
    }
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {:#010x} = {:#010x}",
            self.kind, self.addr, self.value
        )
    }
}

/// A run of consecutive accesses decoded from packed columns in one
/// wide batch: stripped word addresses, the values column, and the
/// load/store bits collected into a lane bitmask.
///
/// Blocks hold at most [`ACCESS_BLOCK`] accesses and always represent
/// consecutive program-order events; [`AccessBlock::get`] reconstructs
/// the `i`-th [`Access`] exactly as the scalar replay path would have
/// delivered it.
#[derive(Copy, Clone, Debug)]
pub struct AccessBlock<'a> {
    addrs: &'a [Addr],
    values: &'a [Word],
    store_mask: u64,
}

impl<'a> AccessBlock<'a> {
    /// Wraps decoded columns. Bit `i` of `store_mask` set means access
    /// `i` is a store; addresses must already have any flag bits
    /// stripped.
    ///
    /// # Panics
    ///
    /// Panics if the columns differ in length or exceed
    /// [`ACCESS_BLOCK`] entries.
    #[inline]
    pub fn new(addrs: &'a [Addr], values: &'a [Word], store_mask: u64) -> Self {
        assert_eq!(addrs.len(), values.len(), "column length mismatch");
        assert!(addrs.len() <= ACCESS_BLOCK, "block too large");
        AccessBlock {
            addrs,
            values,
            store_mask,
        }
    }

    /// Number of accesses in the block.
    #[inline]
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// Whether the block holds no accesses.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// The stripped word-aligned address column.
    #[inline]
    pub fn addrs(&self) -> &'a [Addr] {
        self.addrs
    }

    /// The value column.
    #[inline]
    pub fn values(&self) -> &'a [Word] {
        self.values
    }

    /// Lane bitmask of stores (bit `i` set ⇔ access `i` is a store).
    #[inline]
    pub fn store_mask(&self) -> u64 {
        self.store_mask
    }

    /// Reconstructs the `i`-th access of the block.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn get(&self, i: usize) -> Access {
        Access {
            addr: self.addrs[i],
            value: self.values[i],
            kind: if self.store_mask >> i & 1 == 1 {
                AccessKind::Store
            } else {
                AccessKind::Load
            },
        }
    }

    /// Iterates the block's accesses in program order.
    pub fn iter(&self) -> impl Iterator<Item = Access> + '_ {
        (0..self.len()).map(|i| self.get(i))
    }
}

/// Consumer of the event stream produced by a [`crate::TracedMemory`] or a
/// [`crate::Trace`] replay.
///
/// Cache simulators implement [`AccessSink::on_access`]; locality analyses
/// additionally use the allocation and snapshot callbacks. All callbacks
/// other than `on_access` have empty default implementations.
pub trait AccessSink {
    /// Called for every word load and store, in program order.
    fn on_access(&mut self, access: Access);

    /// Called by the wide replay path with a run of consecutive
    /// accesses decoded as one batch.
    ///
    /// The default implementation delivers each access to
    /// [`AccessSink::on_access`] in program order, so sinks that do not
    /// override this observe exactly the scalar event stream; sinks
    /// with a batched fast path (e.g. the DMC cache simulator) override
    /// it to consume the columns directly.
    #[inline]
    fn on_access_block(&mut self, block: &AccessBlock<'_>) {
        for access in block.iter() {
            self.on_access(access);
        }
    }

    /// Called when a heap or stack region is allocated.
    fn on_alloc(&mut self, region: Region) {
        let _ = region;
    }

    /// Called when a heap or stack region is deallocated.
    fn on_free(&mut self, region: Region) {
        let _ = region;
    }

    /// Called periodically (every `sample_every` accesses) with a view of
    /// live memory, mirroring the paper's 10M-instruction sampling of
    /// frequently *occurring* values.
    fn on_snapshot(&mut self, snapshot: &MemorySnapshot<'_>) {
        let _ = snapshot;
    }

    /// Called exactly once after the final event of the run.
    fn on_finish(&mut self) {}
}

/// Mutable references forward to the referenced sink, so broadcast
/// replay can drive a mixed batch as `&mut [&mut dyn AccessSink]`
/// without wrapping each element.
impl<S: AccessSink + ?Sized> AccessSink for &mut S {
    #[inline]
    fn on_access(&mut self, access: Access) {
        (**self).on_access(access);
    }

    #[inline]
    fn on_access_block(&mut self, block: &AccessBlock<'_>) {
        (**self).on_access_block(block);
    }

    fn on_alloc(&mut self, region: Region) {
        (**self).on_alloc(region);
    }

    fn on_free(&mut self, region: Region) {
        (**self).on_free(region);
    }

    fn on_snapshot(&mut self, snapshot: &MemorySnapshot<'_>) {
        (**self).on_snapshot(snapshot);
    }

    fn on_finish(&mut self) {
        (**self).on_finish();
    }
}

/// A sink that discards everything; useful to run a workload purely for
/// its side effects (e.g. when measuring workload generation speed).
#[derive(Copy, Clone, Default, Debug)]
pub struct NullSink;

impl AccessSink for NullSink {
    #[inline]
    fn on_access(&mut self, _access: Access) {}
}

/// A sink that counts events; handy in tests and examples.
#[derive(Copy, Clone, Default, Debug, Eq, PartialEq)]
pub struct CountingSink {
    loads: u64,
    stores: u64,
    allocs: u64,
    frees: u64,
    snapshots: u64,
    finished: bool,
}

impl CountingSink {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of load events observed.
    pub fn loads(&self) -> u64 {
        self.loads
    }

    /// Number of store events observed.
    pub fn stores(&self) -> u64 {
        self.stores
    }

    /// Total accesses (loads + stores).
    pub fn accesses(&self) -> u64 {
        self.loads + self.stores
    }

    /// Number of allocation events observed.
    pub fn allocs(&self) -> u64 {
        self.allocs
    }

    /// Number of deallocation events observed.
    pub fn frees(&self) -> u64 {
        self.frees
    }

    /// Number of snapshots observed.
    pub fn snapshots(&self) -> u64 {
        self.snapshots
    }

    /// Whether [`AccessSink::on_finish`] has been called.
    pub fn finished(&self) -> bool {
        self.finished
    }
}

impl AccessSink for CountingSink {
    fn on_access(&mut self, access: Access) {
        match access.kind {
            AccessKind::Load => self.loads += 1,
            AccessKind::Store => self.stores += 1,
        }
    }

    fn on_alloc(&mut self, _region: Region) {
        self.allocs += 1;
    }

    fn on_free(&mut self, _region: Region) {
        self.frees += 1;
    }

    fn on_snapshot(&mut self, _snapshot: &MemorySnapshot<'_>) {
        self.snapshots += 1;
    }

    fn on_finish(&mut self) {
        self.finished = true;
    }
}

/// Fans one event stream out to several sinks, enabling single-pass
/// evaluation of many cache configurations over one workload execution.
pub struct Fanout<'a> {
    sinks: Vec<&'a mut dyn AccessSink>,
}

impl<'a> Fanout<'a> {
    /// Creates a fanout over the given sinks. Events are delivered in the
    /// order the sinks appear in `sinks`.
    pub fn new(sinks: Vec<&'a mut dyn AccessSink>) -> Self {
        Fanout { sinks }
    }

    /// Number of downstream sinks.
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// Whether there are no downstream sinks.
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }
}

impl fmt::Debug for Fanout<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Fanout")
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

impl AccessSink for Fanout<'_> {
    #[inline]
    fn on_access(&mut self, access: Access) {
        for sink in &mut self.sinks {
            sink.on_access(access);
        }
    }

    #[inline]
    fn on_access_block(&mut self, block: &AccessBlock<'_>) {
        for sink in &mut self.sinks {
            sink.on_access_block(block);
        }
    }

    fn on_alloc(&mut self, region: Region) {
        for sink in &mut self.sinks {
            sink.on_alloc(region);
        }
    }

    fn on_free(&mut self, region: Region) {
        for sink in &mut self.sinks {
            sink.on_free(region);
        }
    }

    fn on_snapshot(&mut self, snapshot: &MemorySnapshot<'_>) {
        for sink in &mut self.sinks {
            sink.on_snapshot(snapshot);
        }
    }

    fn on_finish(&mut self) {
        for sink in &mut self.sinks {
            sink.on_finish();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::RegionKind;

    #[test]
    fn access_constructors() {
        let l = Access::load(0x100, 7);
        assert_eq!(l.kind, AccessKind::Load);
        assert!(l.kind.is_load());
        let s = Access::store(0x104, 9);
        assert!(s.kind.is_store());
        assert_eq!(s.to_string(), "store 0x00000104 = 0x00000009");
    }

    #[test]
    fn counting_sink_counts() {
        let mut c = CountingSink::new();
        c.on_access(Access::load(0, 0));
        c.on_access(Access::store(4, 1));
        c.on_access(Access::store(8, 2));
        c.on_alloc(Region::new(0x100, 2, RegionKind::Heap));
        c.on_free(Region::new(0x100, 2, RegionKind::Heap));
        c.on_finish();
        assert_eq!(c.loads(), 1);
        assert_eq!(c.stores(), 2);
        assert_eq!(c.accesses(), 3);
        assert_eq!(c.allocs(), 1);
        assert_eq!(c.frees(), 1);
        assert!(c.finished());
    }

    #[test]
    fn access_block_reconstructs_events() {
        let addrs = [0x100u32, 0x104, 0x108];
        let values = [1u32, 2, 3];
        let block = AccessBlock::new(&addrs, &values, 0b010);
        assert_eq!(block.len(), 3);
        assert!(!block.is_empty());
        assert_eq!(block.addrs(), &addrs);
        assert_eq!(block.values(), &values);
        assert_eq!(block.store_mask(), 0b010);
        assert_eq!(block.get(0), Access::load(0x100, 1));
        assert_eq!(block.get(1), Access::store(0x104, 2));
        assert_eq!(block.get(2), Access::load(0x108, 3));
        assert_eq!(block.iter().count(), 3);

        // The default sink delivery observes the same stream the
        // scalar path would produce.
        let mut via_block = CountingSink::new();
        via_block.on_access_block(&block);
        let mut via_events = CountingSink::new();
        for access in block.iter() {
            via_events.on_access(access);
        }
        assert_eq!(via_block, via_events);
    }

    #[test]
    fn fanout_delivers_to_all() {
        let mut a = CountingSink::new();
        let mut b = CountingSink::new();
        {
            let mut fan = Fanout::new(vec![&mut a, &mut b]);
            assert_eq!(fan.len(), 2);
            assert!(!fan.is_empty());
            fan.on_access(Access::load(0, 0));
            fan.on_finish();
        }
        assert_eq!(a.accesses(), 1);
        assert_eq!(b.accesses(), 1);
        assert!(a.finished() && b.finished());
    }
}
