//! Minimal memory-mapped file support with a buffered-read fallback.
//!
//! The out-of-core trace reader ([`crate::MappedTrace`]) wants the
//! file's bytes addressable without staging them through heap buffers,
//! so chunk decode touches only the pages it reads and the kernel
//! evicts cold trace pages under memory pressure. The repo is
//! zero-dependency, so instead of pulling in `memmap2` this module
//! declares the two libc symbols it needs (`mmap`/`munmap` — libc is
//! already linked by `std`) behind `cfg(target_os = "linux")`, and
//! everywhere else — or whenever the syscall fails — falls back to
//! reading the whole file into a heap buffer. Both shapes hide behind
//! [`MapSource`], which hands out one contiguous `&[u8]`.

use std::fmt;
use std::fs::File;
use std::io::{self, Read};
use std::path::Path;

/// A read-only memory mapping of an entire file.
#[cfg(target_os = "linux")]
pub struct Mmap {
    ptr: std::ptr::NonNull<u8>,
    len: usize,
}

#[cfg(target_os = "linux")]
mod sys {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;
    pub const MADV_WILLNEED: i32 = 3;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
        pub fn madvise(addr: *mut c_void, len: usize, advice: i32) -> i32;
    }
}

#[cfg(target_os = "linux")]
impl Mmap {
    /// Maps `len` bytes of `file` read-only.
    ///
    /// # Errors
    ///
    /// Fails when `len` is zero (the kernel rejects empty mappings —
    /// callers use a heap buffer instead) or when the `mmap` syscall
    /// itself fails.
    pub fn map(file: &File, len: usize) -> io::Result<Mmap> {
        use std::os::unix::io::AsRawFd;
        if len == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "cannot map an empty file",
            ));
        }
        // SAFETY: a fresh read-only private mapping of a file we hold
        // open; the kernel validates the fd and length. The result is
        // checked against MAP_FAILED (-1) before use.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        let ptr = std::ptr::NonNull::new(ptr.cast::<u8>())
            .ok_or_else(|| io::Error::other("mmap returned null"))?;
        Ok(Mmap { ptr, len })
    }

    /// Hints the kernel that `len` bytes at `offset` will be read
    /// soon (`madvise(MADV_WILLNEED)`), so read-ahead overlaps with
    /// whatever the caller does next. Purely advisory: out-of-range
    /// requests are clamped and syscall errors ignored — prefetch can
    /// never turn into a failure.
    pub fn advise_willneed(&self, offset: u64, len: u64) {
        const PAGE: u64 = 4096;
        let Ok(map_len) = u64::try_from(self.len) else {
            return;
        };
        let start = (offset.min(map_len) / PAGE) * PAGE;
        let end = offset.saturating_add(len).min(map_len);
        if end <= start {
            return;
        }
        // SAFETY: the range lies inside the live mapping; MADV_WILLNEED
        // only schedules read-ahead and cannot alter the bytes.
        unsafe {
            sys::madvise(
                self.ptr.as_ptr().add(start as usize).cast(),
                (end - start) as usize,
                sys::MADV_WILLNEED,
            );
        }
    }

    /// The mapped bytes.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        // SAFETY: the mapping is PROT_READ, covers `len` bytes, and
        // lives until Drop. A concurrent writer to the underlying file
        // could change bytes under us, but the trace tooling treats
        // written corpora as immutable and every decoder validates
        // what it reads.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }
}

// SAFETY: the mapping is read-only and the raw pointer is owned
// exclusively by this value; sharing &Mmap across threads only ever
// reads the mapped pages.
#[cfg(target_os = "linux")]
unsafe impl Send for Mmap {}
#[cfg(target_os = "linux")]
unsafe impl Sync for Mmap {}

#[cfg(target_os = "linux")]
impl Drop for Mmap {
    fn drop(&mut self) {
        // SAFETY: unmaps exactly the region map() created; errors are
        // unrecoverable in Drop and ignored.
        unsafe {
            sys::munmap(self.ptr.as_ptr().cast(), self.len);
        }
    }
}

#[cfg(target_os = "linux")]
impl fmt::Debug for Mmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mmap").field("len", &self.len).finish()
    }
}

/// One contiguous read-only byte view of a trace file: a page-cache
/// mapping when the platform provides one, a heap buffer otherwise.
pub enum MapSource {
    /// Kernel-backed mapping (linux).
    #[cfg(target_os = "linux")]
    Mapped(Mmap),
    /// The whole file (or an in-memory trace) in a heap buffer.
    Heap(Vec<u8>),
}

impl MapSource {
    /// Opens `path`, preferring a memory mapping and falling back to a
    /// buffered read when mapping is unavailable or fails.
    ///
    /// # Errors
    ///
    /// Propagates file-open and read errors.
    pub fn open(path: &Path) -> io::Result<MapSource> {
        let mut file = File::open(path)?;
        let len = file.metadata()?.len();
        if len > usize::MAX as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "file too large to address",
            ));
        }
        #[cfg(target_os = "linux")]
        if len > 0 {
            if let Ok(map) = Mmap::map(&file, len as usize) {
                return Ok(MapSource::Mapped(map));
            }
        }
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)?;
        Ok(MapSource::Heap(buf))
    }

    /// Reads `path` fully into a heap buffer, never mapping — the
    /// explicit fallback path (and the A/B baseline for benches).
    ///
    /// # Errors
    ///
    /// Propagates file-open and read errors.
    pub fn read(path: &Path) -> io::Result<MapSource> {
        let mut buf = Vec::new();
        File::open(path)?.read_to_end(&mut buf)?;
        Ok(MapSource::Heap(buf))
    }

    /// The underlying bytes.
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        match self {
            #[cfg(target_os = "linux")]
            MapSource::Mapped(map) => map.as_slice(),
            MapSource::Heap(buf) => buf,
        }
    }

    /// Prefetch hint for `len` bytes at `offset`: forwarded to
    /// `Mmap::advise_willneed` on a kernel mapping, a no-op for heap
    /// buffers (already resident).
    pub fn advise_willneed(&self, offset: u64, len: u64) {
        match self {
            #[cfg(target_os = "linux")]
            MapSource::Mapped(map) => map.advise_willneed(offset, len),
            MapSource::Heap(_) => {
                let _ = (offset, len);
            }
        }
    }

    /// Whether the bytes come from a kernel mapping (as opposed to a
    /// resident heap buffer).
    pub fn is_mapped(&self) -> bool {
        match self {
            #[cfg(target_os = "linux")]
            MapSource::Mapped(_) => true,
            MapSource::Heap(_) => false,
        }
    }
}

impl From<Vec<u8>> for MapSource {
    fn from(bytes: Vec<u8>) -> Self {
        MapSource::Heap(bytes)
    }
}

impl fmt::Debug for MapSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MapSource")
            .field("len", &self.bytes().len())
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("fvl-mmap-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn mapped_and_read_agree() {
        let path = temp_path("agree");
        let payload: Vec<u8> = (0..100_000u32).map(|i| i as u8).collect();
        File::create(&path).unwrap().write_all(&payload).unwrap();
        let mapped = MapSource::open(&path).unwrap();
        let read = MapSource::read(&path).unwrap();
        assert_eq!(mapped.bytes(), payload.as_slice());
        assert_eq!(read.bytes(), payload.as_slice());
        assert!(!read.is_mapped());
        #[cfg(target_os = "linux")]
        assert!(mapped.is_mapped());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_yields_empty_bytes() {
        let path = temp_path("empty");
        File::create(&path).unwrap();
        let source = MapSource::open(&path).unwrap();
        assert!(source.bytes().is_empty());
        assert!(!source.is_mapped());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_errors() {
        assert!(MapSource::open(Path::new("/nonexistent/fvl-trace")).is_err());
    }

    #[test]
    fn advise_willneed_is_harmless_everywhere() {
        let path = temp_path("advise");
        let payload = vec![0xabu8; 100_000];
        File::create(&path).unwrap().write_all(&payload).unwrap();
        for source in [
            MapSource::open(&path).unwrap(),
            MapSource::read(&path).unwrap(),
        ] {
            source.advise_willneed(0, 4096);
            source.advise_willneed(50_000, u64::MAX); // clamped to the end
            source.advise_willneed(u64::MAX, 1); // entirely out of range
            assert_eq!(source.bytes(), payload.as_slice());
        }
        std::fs::remove_file(&path).unwrap();
    }
}
