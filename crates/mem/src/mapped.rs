//! Out-of-core trace access: lazy, chunk-granular decode of
//! chunk-indexed (`FVLTRC21`/`FVLTRC22`) trace files through a memory
//! mapping.
//!
//! [`PackedTrace::read_from`] materializes a whole trace in RAM, which
//! caps corpus studies at resident-set size. [`MappedTrace`] instead
//! parses only the fixed header, the region side table, and the footer
//! chunk index (all small), keeps the column payloads as mapped file
//! bytes, and decodes one [`crate::CHUNK_ACCESSES`]-access chunk at a
//! time into a throwaway [`PackedTrace`] that feeds the ordinary
//! block-replay path. Sequential replay therefore holds one chunk's
//! columns resident regardless of trace size, and random access
//! (`decode_chunk`) is O(chunk) — the primitives the corpus manager in
//! `fvl-bench` builds its bounded-residency sweeps on.
//!
//! The mapping comes from [`MapSource::open`], which falls back to a
//! buffered whole-file read when mapping is unavailable; every offset
//! and length in the index is bounds-checked against the file before
//! use, so hostile files fail with `InvalidData` instead of reading
//! out of bounds or allocating unboundedly.
//!
//! Two additions serve multi-pass, pipelined sweeps:
//! [`MappedTrace::prefetch_chunk`] issues `madvise(MADV_WILLNEED)` for
//! a chunk's payload so page-in overlaps with simulating the previous
//! chunk, and an opt-in decoded-chunk LRU
//! ([`MappedTrace::decode_chunk_cached`], capacity via
//! [`MappedTrace::set_chunk_cache_capacity`]) lets a digest pass and a
//! simulation pass share one decode per chunk.

use crate::access::AccessSink;
use crate::layout::Region;
use crate::mmap::MapSource;
use crate::packed::{PackedTrace, RegionEvent};
use crate::simd::{self, SimdLevel};
use crate::trace_io::{
    bad_data, byte_to_kind, AddrCodec, V21Header, MAGIC_V21, MAGIC_V22, REGION_RECORD_BYTES,
    V21_HEADER_BYTES, V21_INDEX_ENTRY_BYTES,
};
use crate::varint;
use std::io;
use std::path::Path;
use std::sync::{Arc, Mutex};

/// One validated footer-index entry.
#[derive(Copy, Clone, Debug)]
struct ChunkEntry {
    /// Absolute file offset of the chunk's inline header.
    payload_offset: u64,
    /// Accesses in the chunk.
    chunk_len: u32,
    /// Encoded bytes of the chunk's address column.
    addr_bytes: u32,
}

/// A v2.1 trace file opened for lazy, chunk-at-a-time decoding.
///
/// # Example
///
/// ```
/// use fvl_mem::{Access, CountingSink, MappedTrace, PackedTrace, Trace, TraceEvent};
///
/// let trace = Trace::from_events(
///     (0..100u32).map(|i| TraceEvent::Access(Access::store(i * 4, i))).collect(),
/// );
/// let packed = PackedTrace::from_trace(&trace);
/// let mut bytes = Vec::new();
/// packed.write_v21_with(&mut bytes, 16).unwrap();
///
/// let mapped = MappedTrace::from_bytes(bytes).unwrap();
/// assert_eq!(mapped.chunk_count(), 7);
/// let mut sink = CountingSink::new();
/// mapped.replay_into(&mut sink).unwrap();
/// assert_eq!(sink.accesses(), 100);
/// ```
#[derive(Debug)]
pub struct MappedTrace {
    source: MapSource,
    header: V21Header,
    chunks: Vec<ChunkEntry>,
    regions: Vec<RegionEvent>,
    cache: Mutex<ChunkCache>,
}

/// Counters describing a [`MappedTrace`] decoded-chunk cache — all
/// byte figures are in decoded (resident) bytes, the same unit as
/// [`MappedTrace::chunk_decoded_bytes`].
#[derive(Copy, Clone, Default, Debug)]
pub struct ChunkCacheStats {
    /// Configured capacity (0 = caching disabled, the default).
    pub capacity: u64,
    /// Decoded bytes currently held.
    pub resident: u64,
    /// High-water mark of `resident`.
    pub peak: u64,
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to decode.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
}

/// One cached decoded chunk.
#[derive(Debug)]
struct CacheEntry {
    index: u64,
    bytes: u64,
    stamp: u64,
    chunk: Arc<PackedTrace>,
}

/// A small LRU over decoded chunks, so multi-pass corpus sweeps decode
/// each chunk once. Linear-scan recency (entries are few — chunks are
/// 32 KiB-class) with a monotone stamp; disabled until a capacity is
/// set.
#[derive(Default, Debug)]
struct ChunkCache {
    capacity: u64,
    stamp: u64,
    resident: u64,
    peak: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    entries: Vec<CacheEntry>,
}

impl ChunkCache {
    /// Evicts least-recently-stamped entries until `resident <= target`.
    fn evict_to(&mut self, target: u64) {
        while self.resident > target && !self.entries.is_empty() {
            let oldest = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(i, _)| i)
                .expect("non-empty entries");
            let evicted = self.entries.swap_remove(oldest);
            self.resident -= evicted.bytes;
            self.evictions += 1;
        }
    }
}

/// Bounds-checked subslice at a (file-offset, length) pair.
fn slice(bytes: &[u8], off: u64, len: u64) -> io::Result<&[u8]> {
    let end = off
        .checked_add(len)
        .ok_or_else(|| bad_data("file offset overflows"))?;
    if end > bytes.len() as u64 {
        return Err(bad_data(format!(
            "range {off}..{end} outside the {}-byte file",
            bytes.len()
        )));
    }
    Ok(&bytes[off as usize..end as usize])
}

fn get_u32(bytes: &[u8], off: u64) -> io::Result<u32> {
    let b = slice(bytes, off, 4)?;
    Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
}

fn get_u64(bytes: &[u8], off: u64) -> io::Result<u64> {
    let b = slice(bytes, off, 8)?;
    Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
}

impl MappedTrace {
    /// Opens a v2.1 trace file, memory-mapping it when the platform
    /// allows and falling back to a buffered read otherwise.
    ///
    /// # Errors
    ///
    /// Fails with the underlying I/O error if the file cannot be
    /// opened, and `InvalidData` if it is not a structurally valid
    /// `FVLTRC21` file (see [`MappedTrace::from_bytes`]).
    pub fn open(path: &Path) -> io::Result<MappedTrace> {
        MappedTrace::parse(MapSource::open(path)?)
    }

    /// Opens a v2.1 trace file through a buffered whole-file read,
    /// never mapping — the explicit fallback (and the mmap-vs-read A/B
    /// baseline).
    ///
    /// # Errors
    ///
    /// Same conditions as [`MappedTrace::open`].
    pub fn open_buffered(path: &Path) -> io::Result<MappedTrace> {
        MappedTrace::parse(MapSource::read(path)?)
    }

    /// Wraps in-memory v2.1 bytes for lazy decoding — the hermetic
    /// entry point differential tests use.
    ///
    /// # Errors
    ///
    /// Fails with `InvalidData` when the bytes are not a well-formed
    /// `FVLTRC21` file: wrong magic, inconsistent header geometry, a
    /// footer index whose offsets leave the file or disagree with the
    /// inline chunk headers, or a region table out of order.
    pub fn from_bytes(bytes: Vec<u8>) -> io::Result<MappedTrace> {
        MappedTrace::parse(MapSource::Heap(bytes))
    }

    /// Validates the header, footer index, and region table; column
    /// payloads are only bounds-checked here and decoded lazily.
    fn parse(source: MapSource) -> io::Result<MappedTrace> {
        let bytes = source.bytes();
        let len = bytes.len() as u64;
        if bytes.len() < V21_HEADER_BYTES + 8 {
            return Err(bad_data("file too short for a chunk-indexed trace"));
        }
        let codec = if &bytes[..8] == MAGIC_V21 {
            AddrCodec::Varint
        } else if &bytes[..8] == MAGIC_V22 {
            AddrCodec::Split
        } else {
            return Err(bad_data(
                "not an FVLTRC21/FVLTRC22 file (only the chunk-indexed formats support mapped reads)",
            ));
        };
        let header = V21Header {
            accesses: get_u64(bytes, 8)?,
            region_count: get_u64(bytes, 16)?,
            chunk_count: get_u64(bytes, 24)?,
            chunk_accesses: get_u32(bytes, 32)?,
            codec,
        }
        .validate()?;
        if codec == AddrCodec::Split {
            let reserved = get_u32(bytes, 36)?;
            if reserved != codec.id() {
                return Err(bad_data(format!(
                    "FVLTRC22 header declares codec id {reserved}, expected {}",
                    codec.id()
                )));
            }
        }

        // Footer: the trailing u64 locates the index, whose size the
        // header fixes; both must agree exactly.
        let index_bytes = header.chunk_count * V21_INDEX_ENTRY_BYTES as u64;
        let index_offset = get_u64(bytes, len - 8)?;
        let expected_offset = len
            .checked_sub(8 + index_bytes)
            .ok_or_else(|| bad_data("file too short for its chunk index"))?;
        if index_offset != expected_offset || index_offset < V21_HEADER_BYTES as u64 {
            return Err(bad_data(format!(
                "chunk index offset {index_offset} inconsistent with file length {len}"
            )));
        }

        // Region side table, immediately before the index.
        let regions_offset = index_offset
            .checked_sub(header.region_count * REGION_RECORD_BYTES as u64)
            .filter(|&off| off >= V21_HEADER_BYTES as u64)
            .ok_or_else(|| bad_data("region table overlaps the header"))?;
        let mut regions = Vec::with_capacity(header.region_count.min(1 << 20) as usize);
        let mut prev_pos = 0u64;
        for i in 0..header.region_count {
            let off = regions_offset + i * REGION_RECORD_BYTES as u64;
            let pos = get_u64(bytes, off)?;
            let is_alloc = match slice(bytes, off + 8, 1)?[0] {
                0 => false,
                1 => true,
                other => return Err(bad_data(format!("bad region event flag {other}"))),
            };
            let kind = byte_to_kind(slice(bytes, off + 9, 1)?[0])?;
            let base = get_u32(bytes, off + 10)?;
            let words = get_u32(bytes, off + 14)?;
            if pos < prev_pos || pos > header.accesses {
                return Err(bad_data(format!(
                    "region event position {pos} out of order"
                )));
            }
            prev_pos = pos;
            regions.push(RegionEvent {
                pos,
                is_alloc,
                region: Region::new(base, words, kind),
            });
        }

        // Chunk index: every entry bounds-checked against the payload
        // area and cross-checked against its inline chunk header.
        let mut chunks = Vec::with_capacity(header.chunk_count.min(1 << 20) as usize);
        for i in 0..header.chunk_count {
            let off = index_offset + i * V21_INDEX_ENTRY_BYTES as u64;
            let entry = ChunkEntry {
                payload_offset: get_u64(bytes, off)?,
                chunk_len: get_u32(bytes, off + 8)?,
                addr_bytes: get_u32(bytes, off + 12)?,
            };
            header.check_chunk(i, entry.chunk_len, entry.addr_bytes)?;
            let payload_len = 8 + u64::from(entry.addr_bytes) + 4 * u64::from(entry.chunk_len);
            let payload_end = entry
                .payload_offset
                .checked_add(payload_len)
                .ok_or_else(|| bad_data("chunk payload offset overflows"))?;
            if entry.payload_offset < V21_HEADER_BYTES as u64 || payload_end > regions_offset {
                return Err(bad_data(format!(
                    "chunk {i} payload {}..{payload_end} outside the payload area",
                    entry.payload_offset
                )));
            }
            let inline_len = get_u32(bytes, entry.payload_offset)?;
            let inline_bytes = get_u32(bytes, entry.payload_offset + 4)?;
            if inline_len != entry.chunk_len || inline_bytes != entry.addr_bytes {
                return Err(bad_data(format!(
                    "chunk {i} index entry disagrees with its inline header"
                )));
            }
            chunks.push(entry);
        }

        Ok(MappedTrace {
            source,
            header,
            chunks,
            regions,
            cache: Mutex::new(ChunkCache::default()),
        })
    }

    /// Number of access events across the whole trace.
    pub fn accesses(&self) -> u64 {
        self.header.accesses
    }

    /// Number of lazily decodable chunks.
    pub fn chunk_count(&self) -> u64 {
        self.header.chunk_count
    }

    /// Accesses per chunk (the last chunk may be shorter).
    pub fn chunk_accesses(&self) -> u32 {
        self.header.chunk_accesses
    }

    /// Accesses in chunk `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.chunk_count()`.
    pub fn chunk_len(&self, i: u64) -> u32 {
        self.chunks[usize::try_from(i).expect("chunk index")].chunk_len
    }

    /// The region-event side table (decoded eagerly — it is tiny).
    pub fn region_events(&self) -> &[RegionEvent] {
        &self.regions
    }

    /// Total bytes of the underlying file (or buffer).
    pub fn file_bytes(&self) -> u64 {
        self.source.bytes().len() as u64
    }

    /// Whether the payload bytes come from a kernel memory mapping
    /// (false on the buffered-read fallback and for in-memory bytes).
    pub fn is_mapped(&self) -> bool {
        self.source.is_mapped()
    }

    /// Resident heap bytes decoding chunk `i` will allocate: the two
    /// `u32` columns plus its slice of the region table. This is the
    /// unit the corpus manager's residency budget accounts in.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.chunk_count()`.
    pub fn chunk_decoded_bytes(&self, i: u64) -> u64 {
        let entry = self.chunks[usize::try_from(i).expect("chunk index")];
        let (lo, hi) = self.header.chunk_range(i);
        let regions = self.chunk_regions(i, lo, hi).count() as u64;
        8 * u64::from(entry.chunk_len) + regions * std::mem::size_of::<RegionEvent>() as u64
    }

    /// The region events belonging to chunk `i` (positions in
    /// `[lo, hi)`, and `pos == accesses` for the final chunk).
    fn chunk_regions(&self, i: u64, lo: u64, hi: u64) -> impl Iterator<Item = RegionEvent> + '_ {
        let last = i + 1 == self.header.chunk_count;
        self.regions
            .iter()
            .filter(move |e| e.pos >= lo && (e.pos < hi || (last && e.pos == hi)))
            .map(move |e| RegionEvent {
                pos: e.pos - lo,
                ..*e
            })
    }

    /// Decodes chunk `i` into a standalone [`PackedTrace`]: varint
    /// address column expanded, raw values copied, and the chunk's
    /// region events rebased to chunk-local positions.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.chunk_count()`.
    ///
    /// # Errors
    ///
    /// Fails with `InvalidData` when the chunk's payload bytes are
    /// corrupt (truncated or malformed varints, deltas leaving the
    /// address space).
    pub fn decode_chunk(&self, i: u64) -> io::Result<PackedTrace> {
        let entry = self.chunks[usize::try_from(i).expect("chunk index")];
        let bytes = self.source.bytes();
        let (lo, hi) = self.header.chunk_range(i);
        let addr_off = entry.payload_offset + 8;
        let encoded = slice(bytes, addr_off, u64::from(entry.addr_bytes))?;
        let addrs = match self.header.codec {
            AddrCodec::Varint => varint::decode_addr_chunk(encoded, entry.chunk_len as usize)?,
            AddrCodec::Split => {
                let mut addrs = Vec::new();
                varint::decode_addr_chunk_split_into_with(
                    encoded,
                    entry.chunk_len as usize,
                    simd::active_level(),
                    &mut addrs,
                )?;
                addrs
            }
        };
        let values_off = addr_off + u64::from(entry.addr_bytes);
        let values: Vec<u32> = slice(bytes, values_off, 4 * u64::from(entry.chunk_len))?
            .chunks_exact(4)
            .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
            .collect();
        let regions: Vec<RegionEvent> = self.chunk_regions(i, lo, hi).collect();
        PackedTrace::from_columns(addrs, values, regions).map_err(bad_data)
    }

    /// The address codec of the underlying file (`FVLTRC21` varint or
    /// `FVLTRC22` stream-split).
    pub fn codec(&self) -> AddrCodec {
        self.header.codec
    }

    /// Hints the kernel to page in chunk `i`'s payload bytes ahead of
    /// its decode (`madvise(MADV_WILLNEED)` on the mapped path, no-op
    /// otherwise). Purely advisory — never fails.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.chunk_count()`.
    pub fn prefetch_chunk(&self, i: u64) {
        let entry = self.chunks[usize::try_from(i).expect("chunk index")];
        let len = 8 + u64::from(entry.addr_bytes) + 4 * u64::from(entry.chunk_len);
        self.source.advise_willneed(entry.payload_offset, len);
    }

    /// Enables (or resizes) the decoded-chunk LRU cache used by
    /// [`MappedTrace::decode_chunk_cached`], evicting immediately if
    /// the current contents exceed the new capacity. Capacity 0 (the
    /// default) disables caching. The unit is decoded bytes, as
    /// returned by [`MappedTrace::chunk_decoded_bytes`].
    ///
    /// Each call starts a fresh accounting epoch: the hit/miss/eviction
    /// counters reset and `peak` rebases to the surviving residency, so
    /// [`MappedTrace::chunk_cache_stats`] describes only the use since
    /// the capacity was last set.
    pub fn set_chunk_cache_capacity(&self, bytes: u64) {
        let mut cache = self.cache.lock().expect("chunk cache poisoned");
        cache.capacity = bytes;
        let target = cache.capacity;
        cache.evict_to(target);
        cache.hits = 0;
        cache.misses = 0;
        cache.evictions = 0;
        cache.peak = cache.resident;
    }

    /// Snapshot of the decoded-chunk cache counters.
    pub fn chunk_cache_stats(&self) -> ChunkCacheStats {
        let cache = self.cache.lock().expect("chunk cache poisoned");
        ChunkCacheStats {
            capacity: cache.capacity,
            resident: cache.resident,
            peak: cache.peak,
            hits: cache.hits,
            misses: cache.misses,
            evictions: cache.evictions,
        }
    }

    /// Returns chunk `i` from the decoded-chunk cache without decoding
    /// anything: `Some` (counted as a hit) when resident, `None` when
    /// absent or the cache is disabled.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.chunk_count()`.
    pub fn cached_chunk(&self, i: u64) -> Option<Arc<PackedTrace>> {
        assert!(i < self.header.chunk_count, "chunk index out of range");
        let mut cache = self.cache.lock().expect("chunk cache poisoned");
        if cache.capacity == 0 {
            return None;
        }
        cache.stamp += 1;
        let stamp = cache.stamp;
        if let Some(entry) = cache.entries.iter_mut().find(|e| e.index == i) {
            entry.stamp = stamp;
            let chunk = Arc::clone(&entry.chunk);
            cache.hits += 1;
            return Some(chunk);
        }
        None
    }

    /// [`MappedTrace::decode_chunk`] through the decoded-chunk cache:
    /// a resident chunk is returned without touching the file; a miss
    /// decodes, inserts (evicting least-recently-used entries to make
    /// room), and returns the fresh chunk. Chunks larger than the whole
    /// capacity are returned uncached. With the cache disabled this is
    /// exactly `decode_chunk` plus an `Arc`.
    ///
    /// Concurrent misses on the same chunk may decode it twice; both
    /// results are identical and the first insert wins.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.chunk_count()`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`MappedTrace::decode_chunk`].
    pub fn decode_chunk_cached(&self, i: u64) -> io::Result<Arc<PackedTrace>> {
        if let Some(chunk) = self.cached_chunk(i) {
            return Ok(chunk);
        }
        // Decode outside the lock so concurrent misses on different
        // chunks proceed in parallel.
        let decoded = Arc::new(self.decode_chunk(i)?);
        let bytes = self.chunk_decoded_bytes(i);
        let mut cache = self.cache.lock().expect("chunk cache poisoned");
        if cache.capacity == 0 {
            return Ok(decoded);
        }
        cache.misses += 1;
        if bytes > cache.capacity {
            return Ok(decoded);
        }
        if let Some(entry) = cache.entries.iter().find(|e| e.index == i) {
            // Lost a decode race; keep the incumbent.
            return Ok(Arc::clone(&entry.chunk));
        }
        let target = cache.capacity - bytes;
        cache.evict_to(target);
        cache.stamp += 1;
        let stamp = cache.stamp;
        cache.entries.push(CacheEntry {
            index: i,
            bytes,
            stamp,
            chunk: Arc::clone(&decoded),
        });
        cache.resident += bytes;
        cache.peak = cache.peak.max(cache.resident);
        Ok(decoded)
    }

    /// Streams the whole trace into `sink` chunk by chunk, decoding
    /// each chunk lazily and finishing the sink exactly once — the
    /// event stream is identical to replaying the fully resident
    /// [`PackedTrace`], but only one chunk's columns are ever live.
    ///
    /// # Errors
    ///
    /// Propagates chunk-decode failures; the sink may have consumed a
    /// prefix of the trace (and is not finished) when that happens.
    pub fn replay_into(&self, sink: &mut (impl AccessSink + ?Sized)) -> io::Result<()> {
        self.replay_into_with(simd::active_level(), sink)
    }

    /// [`MappedTrace::replay_into`] with an explicit decode kernel.
    ///
    /// # Errors
    ///
    /// Propagates chunk-decode failures, as for
    /// [`MappedTrace::replay_into`].
    pub fn replay_into_with(
        &self,
        level: SimdLevel,
        sink: &mut (impl AccessSink + ?Sized),
    ) -> io::Result<()> {
        if self.header.chunk_count == 0 {
            for event in &self.regions {
                if event.is_alloc {
                    sink.on_alloc(event.region);
                } else {
                    sink.on_free(event.region);
                }
            }
        } else {
            for i in 0..self.header.chunk_count {
                self.decode_chunk(i)?.feed_into_with(level, sink);
            }
        }
        sink.on_finish();
        Ok(())
    }

    /// Decodes the entire trace into one resident [`PackedTrace`] (the
    /// in-RAM A/B baseline for the lazy path).
    ///
    /// # Errors
    ///
    /// Propagates decode failures.
    pub fn to_packed(&self) -> io::Result<PackedTrace> {
        PackedTrace::read_from(self.source.bytes())
    }
}

#[cfg(all(test, not(feature = "seeded-bugs")))]
mod tests {
    use super::*;
    use crate::access::{Access, CountingSink};
    use crate::layout::RegionKind;
    use crate::trace::{Trace, TraceEvent};
    use std::io::Write;

    fn mixed_trace(accesses: u32) -> Trace {
        let mut events: Vec<TraceEvent> = (0..accesses)
            .map(|i| {
                TraceEvent::Access(if i % 3 == 0 {
                    Access::store((i % 257) * 4, i)
                } else {
                    Access::load((i % 509) * 4, i ^ 0x5a5a)
                })
            })
            .collect();
        let region = Region::new(0x4000, 8, RegionKind::Heap);
        // Region events at the start, mid-stream off a chunk boundary,
        // exactly on a chunk boundary (chunk size 16 below), and at
        // the very end.
        if accesses >= 40 {
            events.insert(0, TraceEvent::Alloc(region));
            events.insert(10, TraceEvent::Alloc(region));
            events.insert(34, TraceEvent::Free(region));
            events.push(TraceEvent::Free(region));
        }
        Trace::from_events(events)
    }

    fn v21_bytes(trace: &Trace, chunk_accesses: u32) -> Vec<u8> {
        let packed = PackedTrace::from_trace(trace);
        let mut bytes = Vec::new();
        packed.write_v21_with(&mut bytes, chunk_accesses).unwrap();
        bytes
    }

    fn v22_bytes(trace: &Trace, chunk_accesses: u32) -> Vec<u8> {
        let packed = PackedTrace::from_trace(trace);
        let mut bytes = Vec::new();
        packed.write_v22_with(&mut bytes, chunk_accesses).unwrap();
        bytes
    }

    #[test]
    fn lazy_replay_matches_resident_replay() {
        for accesses in [0u32, 1, 15, 16, 17, 100, 1000] {
            let trace = mixed_trace(accesses);
            let packed = PackedTrace::from_trace(&trace);
            let mapped = MappedTrace::from_bytes(v21_bytes(&trace, 16)).unwrap();
            let mut resident = CountingSink::new();
            packed.replay_into(&mut resident);
            let mut lazy = CountingSink::new();
            mapped.replay_into(&mut lazy).unwrap();
            assert_eq!(lazy, resident, "{accesses} accesses");
        }
    }

    #[test]
    fn chunks_concatenate_to_the_full_columns() {
        let trace = mixed_trace(100);
        let packed = PackedTrace::from_trace(&trace);
        let mapped = MappedTrace::from_bytes(v21_bytes(&trace, 16)).unwrap();
        assert_eq!(mapped.accesses(), packed.accesses());
        assert_eq!(mapped.chunk_count(), packed.accesses().div_ceil(16));
        let mut addrs = Vec::new();
        let mut values = Vec::new();
        let mut regions = 0usize;
        for i in 0..mapped.chunk_count() {
            let chunk = mapped.decode_chunk(i).unwrap();
            assert_eq!(u64::from(mapped.chunk_len(i)), chunk.accesses());
            assert!(mapped.chunk_decoded_bytes(i) >= 8 * chunk.accesses());
            addrs.extend_from_slice(chunk.addrs());
            values.extend_from_slice(chunk.values());
            regions += chunk.region_events().len();
        }
        assert_eq!(addrs, packed.addrs());
        assert_eq!(values, packed.values());
        assert_eq!(regions, packed.region_events().len());
        assert_eq!(mapped.region_events(), packed.region_events());
        assert_eq!(mapped.to_packed().unwrap().addrs(), packed.addrs());
    }

    #[test]
    fn open_maps_and_matches_from_bytes() {
        let trace = mixed_trace(500);
        let bytes = v21_bytes(&trace, 64);
        let mut path = std::env::temp_dir();
        path.push(format!("fvl-mapped-test-{}.fvltrc", std::process::id()));
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&bytes)
            .unwrap();

        let mapped = MappedTrace::open(&path).unwrap();
        let buffered = MappedTrace::open_buffered(&path).unwrap();
        #[cfg(target_os = "linux")]
        assert!(mapped.is_mapped());
        assert!(!buffered.is_mapped());
        assert_eq!(mapped.file_bytes(), bytes.len() as u64);

        let hermetic = MappedTrace::from_bytes(bytes).unwrap();
        let mut a = CountingSink::new();
        let mut b = CountingSink::new();
        let mut c = CountingSink::new();
        mapped.replay_into(&mut a).unwrap();
        buffered.replay_into(&mut b).unwrap();
        hermetic.replay_into(&mut c).unwrap();
        assert_eq!(a, b);
        assert_eq!(a, c);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn non_v21_files_are_refused() {
        let packed = PackedTrace::from_trace(&mixed_trace(10));
        let mut v2 = Vec::new();
        packed.write_to(&mut v2).unwrap();
        let err = MappedTrace::from_bytes(v2).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(MappedTrace::from_bytes(Vec::new()).is_err());
    }

    #[test]
    fn every_simd_level_streams_the_same_events() {
        let trace = mixed_trace(300);
        let packed = PackedTrace::from_trace(&trace);
        let mapped = MappedTrace::from_bytes(v21_bytes(&trace, 16)).unwrap();
        let mut reference = CountingSink::new();
        packed.replay_into_with(SimdLevel::Scalar, &mut reference);
        for level in SimdLevel::available() {
            let mut sink = CountingSink::new();
            mapped.replay_into_with(level, &mut sink).unwrap();
            assert_eq!(sink, reference, "{level:?}");
        }
    }

    #[test]
    fn v22_maps_and_matches_v21_chunk_for_chunk() {
        for accesses in [0u32, 1, 15, 16, 17, 100, 1000] {
            let trace = mixed_trace(accesses);
            let v21 = MappedTrace::from_bytes(v21_bytes(&trace, 16)).unwrap();
            let v22 = MappedTrace::from_bytes(v22_bytes(&trace, 16)).unwrap();
            assert_eq!(v21.codec(), crate::AddrCodec::Varint);
            assert_eq!(v22.codec(), crate::AddrCodec::Split);
            assert_eq!(v21.chunk_count(), v22.chunk_count());
            assert_eq!(v21.region_events(), v22.region_events());
            for i in 0..v21.chunk_count() {
                let a = v21.decode_chunk(i).unwrap();
                let b = v22.decode_chunk(i).unwrap();
                assert_eq!(a.addrs(), b.addrs(), "chunk {i} of {accesses}");
                assert_eq!(a.values(), b.values(), "chunk {i} of {accesses}");
                assert_eq!(a.region_events(), b.region_events());
                assert_eq!(v21.chunk_decoded_bytes(i), v22.chunk_decoded_bytes(i));
            }
            let mut a = CountingSink::new();
            let mut b = CountingSink::new();
            v21.replay_into(&mut a).unwrap();
            v22.replay_into(&mut b).unwrap();
            assert_eq!(a, b, "{accesses} accesses");
            assert_eq!(
                v22.to_packed().unwrap().addrs(),
                PackedTrace::from_trace(&trace).addrs()
            );
        }
    }

    #[test]
    fn prefetch_is_harmless_on_every_source() {
        let trace = mixed_trace(100);
        let mapped = MappedTrace::from_bytes(v22_bytes(&trace, 16)).unwrap();
        for i in 0..mapped.chunk_count() {
            mapped.prefetch_chunk(i);
        }
        let mut sink = CountingSink::new();
        mapped.replay_into(&mut sink).unwrap();
        assert_eq!(sink.accesses(), mapped.accesses());
    }

    #[test]
    fn chunk_cache_hits_evicts_and_respects_capacity() {
        let trace = mixed_trace(200);
        let mapped = MappedTrace::from_bytes(v22_bytes(&trace, 16)).unwrap();
        let n = mapped.chunk_count();
        assert!(n >= 4, "test wants several chunks, got {n}");
        // Disabled by default: no hits, nothing retained.
        assert!(mapped.cached_chunk(0).is_none());
        let first = mapped.decode_chunk_cached(0).unwrap();
        assert_eq!(mapped.chunk_cache_stats().resident, 0);
        assert!(mapped.cached_chunk(0).is_none());

        // Capacity for roughly two chunks.
        let per_chunk = mapped.chunk_decoded_bytes(0);
        mapped.set_chunk_cache_capacity(2 * per_chunk);
        let again = mapped.decode_chunk_cached(0).unwrap();
        assert_eq!(first.addrs(), again.addrs());
        assert!(mapped.cached_chunk(0).is_some(), "0 should now be resident");
        let stats = mapped.chunk_cache_stats();
        assert_eq!(stats.misses, 1);
        assert!(stats.hits >= 1);
        assert_eq!(stats.resident, per_chunk);

        // Filling past capacity evicts the least recently used.
        mapped.decode_chunk_cached(1).unwrap();
        mapped.cached_chunk(0); // refresh 0 so 1 is the LRU victim
        mapped.decode_chunk_cached(2).unwrap();
        let stats = mapped.chunk_cache_stats();
        assert!(stats.evictions >= 1, "{stats:?}");
        assert!(stats.resident <= stats.capacity, "{stats:?}");
        assert!(stats.peak <= stats.capacity, "{stats:?}");
        assert!(mapped.cached_chunk(1).is_none(), "LRU victim survived");
        assert!(mapped.cached_chunk(0).is_some());
        assert!(mapped.cached_chunk(2).is_some());

        // Cached decode still yields correct chunks everywhere.
        for i in 0..n {
            assert_eq!(
                mapped.decode_chunk_cached(i).unwrap().addrs(),
                mapped.decode_chunk(i).unwrap().addrs(),
                "chunk {i}"
            );
        }

        // Shrinking to zero flushes and disables.
        mapped.set_chunk_cache_capacity(0);
        assert_eq!(mapped.chunk_cache_stats().resident, 0);
        assert!(mapped.cached_chunk(0).is_none());
    }
}
