//! Recorded event logs and replay.
//!
//! Recording a workload once and replaying the [`Trace`] into many cache
//! configurations is how the experiment harness evaluates large design
//! spaces (e.g. Figure 12's 12 DMC configurations × 3 encodings) without
//! re-executing the workload.

use crate::access::{Access, AccessSink};
use crate::layout::Region;
use crate::live::LiveSet;
use crate::sim_memory::SimMemory;
use crate::snapshot::MemorySnapshot;
use std::fmt;

/// One event in a recorded trace.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub enum TraceEvent {
    /// A word load or store.
    Access(Access),
    /// A region was allocated.
    Alloc(Region),
    /// A region was deallocated.
    Free(Region),
}

/// An [`AccessSink`] that records the event stream.
///
/// # Example
///
/// ```
/// use fvl_mem::{Bus, TraceBuffer, TracedMemory};
///
/// let mut buf = TraceBuffer::new();
/// {
///     let mut mem = TracedMemory::new(&mut buf);
///     let a = mem.alloc(1);
///     mem.store(a, 3);
/// }
/// let trace = buf.into_trace();
/// // The store plus the allocator's two chunk-header accesses.
/// assert_eq!(trace.accesses(), 3);
/// ```
#[derive(Clone, Default, Debug)]
pub struct TraceBuffer {
    events: Vec<TraceEvent>,
    accesses: u64,
    /// Stop recording once this many accesses have been kept (see
    /// [`TraceBuffer::with_access_limit`]); `u64::MAX` means unlimited.
    limit: u64,
    /// Set when the first access beyond `limit` arrives; every later
    /// event is dropped.
    saturated: bool,
}

impl TraceBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        TraceBuffer {
            events: Vec::new(),
            accesses: 0,
            limit: u64::MAX,
            saturated: false,
        }
    }

    /// Creates an empty buffer with room for `events` trace events, so
    /// recording a workload of known size never reallocates the log.
    pub fn with_capacity(events: usize) -> Self {
        let mut buf = Self::new();
        buf.events = Vec::with_capacity(events);
        buf
    }

    /// Caps recording at `max_accesses` access events. The result of
    /// [`TraceBuffer::into_trace`] equals
    /// [`Trace::into_prefix`]`(max_accesses)` of the unlimited
    /// recording: allocation/free events are kept until the first
    /// access beyond the cap arrives, after which everything is
    /// dropped — but without ever materializing the events past the
    /// cut.
    pub fn with_access_limit(mut self, max_accesses: u64) -> Self {
        self.limit = max_accesses;
        self
    }

    /// Reserves capacity for at least `additional` more events.
    pub fn reserve(&mut self, additional: usize) {
        self.events.reserve(additional);
    }

    /// Number of events buffered so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Finalizes the buffer into an immutable [`Trace`].
    pub fn into_trace(self) -> Trace {
        Trace {
            events: self.events,
            accesses: self.accesses,
        }
    }
}

impl AccessSink for TraceBuffer {
    #[inline]
    fn on_access(&mut self, access: Access) {
        if self.accesses >= self.limit {
            self.saturated = true;
            return;
        }
        self.accesses += 1;
        self.events.push(TraceEvent::Access(access));
    }

    fn on_alloc(&mut self, region: Region) {
        if !self.saturated {
            self.events.push(TraceEvent::Alloc(region));
        }
    }

    fn on_free(&mut self, region: Region) {
        if !self.saturated {
            self.events.push(TraceEvent::Free(region));
        }
    }
}

/// An immutable recorded event log.
#[derive(Clone, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
    accesses: u64,
}

impl Trace {
    /// Builds a trace directly from events (mostly for tests).
    pub fn from_events(events: Vec<TraceEvent>) -> Self {
        let accesses = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Access(_)))
            .count() as u64;
        Trace { events, accesses }
    }

    /// The recorded events, in program order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of access events in the trace.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Number of events of any kind.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Index of the first event *excluded* from a prefix of
    /// `max_accesses` access events, plus the number of accesses kept.
    fn prefix_cut(&self, max_accesses: u64) -> (usize, u64) {
        let mut seen = 0u64;
        for (i, event) in self.events.iter().enumerate() {
            if matches!(event, TraceEvent::Access(_)) {
                if seen == max_accesses {
                    return (i, seen);
                }
                seen += 1;
            }
        }
        (self.events.len(), seen)
    }

    /// Returns the prefix of this trace holding at most `max_accesses`
    /// access events (allocation/free events up to the cut point are
    /// preserved). Smoke-mode experiment runs use this to scale every
    /// workload down to a fixed reference budget. The copy is sized
    /// exactly once; prefer [`Trace::into_prefix`] when the original
    /// trace is no longer needed — it avoids copying entirely.
    pub fn prefix(&self, max_accesses: u64) -> Trace {
        if max_accesses >= self.accesses {
            return self.clone();
        }
        let (cut, seen) = self.prefix_cut(max_accesses);
        let mut events = Vec::with_capacity(cut);
        events.extend_from_slice(&self.events[..cut]);
        Trace {
            events,
            accesses: seen,
        }
    }

    /// Consuming variant of [`Trace::prefix`]: truncates the event log
    /// in place, so no event is ever copied — neither when the limit
    /// exceeds the trace (the trace is returned as-is) nor when it cuts
    /// (the vector is truncated, not rebuilt).
    pub fn into_prefix(mut self, max_accesses: u64) -> Trace {
        if max_accesses >= self.accesses {
            return self;
        }
        let (cut, seen) = self.prefix_cut(max_accesses);
        self.events.truncate(cut);
        self.accesses = seen;
        self
    }

    /// Iterates over access events only.
    pub fn iter_accesses(&self) -> impl Iterator<Item = Access> + '_ {
        self.events.iter().filter_map(|e| match e {
            TraceEvent::Access(a) => Some(*a),
            _ => None,
        })
    }

    /// Replays the trace into `sink` (accesses, allocs, frees, finish).
    ///
    /// Generic over the sink type, so per-event dispatch monomorphizes
    /// and the sink's `on_access` can inline into the replay loop — the
    /// hot path of every simulation. Also callable with a
    /// `&mut dyn AccessSink` (trait objects implement their own trait),
    /// which is exactly what [`Trace::replay`] does.
    ///
    /// No snapshots are emitted; use [`Trace::replay_with_snapshots_into`]
    /// when the sink performs occurrence sampling.
    pub fn replay_into<S: AccessSink + ?Sized>(&self, sink: &mut S) {
        for event in &self.events {
            match *event {
                TraceEvent::Access(a) => sink.on_access(a),
                TraceEvent::Alloc(r) => sink.on_alloc(r),
                TraceEvent::Free(r) => sink.on_free(r),
            }
        }
        sink.on_finish();
    }

    /// Dynamic-dispatch wrapper over [`Trace::replay_into`], for
    /// heterogeneous sink collections and object-safe call sites.
    pub fn replay(&self, sink: &mut dyn AccessSink) {
        self.replay_into(sink);
    }

    /// Replays the trace while reconstructing memory contents and the
    /// live-location set, emitting a [`MemorySnapshot`] every
    /// `sample_every` accesses exactly as the original
    /// [`crate::TracedMemory`] would have.
    ///
    /// # Panics
    ///
    /// Panics if `sample_every` is zero.
    pub fn replay_with_snapshots(&self, sink: &mut dyn AccessSink, sample_every: u64) {
        self.replay_with_snapshots_opts_into(sink, sample_every, true);
    }

    /// Monomorphized variant of [`Trace::replay_with_snapshots`]; see
    /// [`Trace::replay_into`] for why the generic path is the fast one.
    ///
    /// # Panics
    ///
    /// Panics if `sample_every` is zero.
    pub fn replay_with_snapshots_into<S: AccessSink + ?Sized>(
        &self,
        sink: &mut S,
        sample_every: u64,
    ) {
        self.replay_with_snapshots_opts_into(sink, sample_every, true);
    }

    /// Like [`Trace::replay_with_snapshots`], but with control over
    /// whether *heap* deallocations remove locations from the live set.
    /// Passing `false` reproduces the paper's measurement setup ("we
    /// were able to track deallocations of stack memory but not that of
    /// heap memory"); stack frees are always tracked.
    ///
    /// # Panics
    ///
    /// Panics if `sample_every` is zero.
    pub fn replay_with_snapshots_opts(
        &self,
        sink: &mut dyn AccessSink,
        sample_every: u64,
        track_heap_free: bool,
    ) {
        self.replay_with_snapshots_opts_into(sink, sample_every, track_heap_free);
    }

    /// Monomorphized variant of [`Trace::replay_with_snapshots_opts`];
    /// see [`Trace::replay_into`] for why the generic path is the fast
    /// one.
    ///
    /// # Panics
    ///
    /// Panics if `sample_every` is zero.
    pub fn replay_with_snapshots_opts_into<S: AccessSink + ?Sized>(
        &self,
        sink: &mut S,
        sample_every: u64,
        track_heap_free: bool,
    ) {
        assert!(sample_every > 0, "sampling interval must be positive");
        let mut mem = SimMemory::new();
        let mut live = LiveSet::new();
        let mut count: u64 = 0;
        let mut next = sample_every;
        for event in &self.events {
            match *event {
                TraceEvent::Access(a) => {
                    if a.kind.is_store() {
                        mem.write(a.addr, a.value);
                    }
                    live.mark(a.addr);
                    count += 1;
                    sink.on_access(a);
                    if count >= next {
                        next = count + sample_every;
                        let snap = MemorySnapshot::new(&mem, &live, count);
                        sink.on_snapshot(&snap);
                    }
                }
                TraceEvent::Alloc(r) => sink.on_alloc(r),
                TraceEvent::Free(r) => {
                    if track_heap_free || r.kind != crate::layout::RegionKind::Heap {
                        live.clear_region(&r);
                    }
                    sink.on_free(r);
                }
            }
        }
        sink.on_finish();
    }
}

impl fmt::Debug for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Trace")
            .field("events", &self.events.len())
            .field("accesses", &self.accesses)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::CountingSink;
    use crate::bus::{Bus, BusExt};
    use crate::traced::TracedMemory;

    fn record_simple() -> Trace {
        let mut buf = TraceBuffer::new();
        {
            let mut m = TracedMemory::new(&mut buf);
            let a = m.alloc(4);
            for i in 0..4 {
                m.store_idx(a, i, 7);
            }
            for i in 0..4 {
                let _ = m.load_idx(a, i);
            }
            m.free(a);
        }
        buf.into_trace()
    }

    #[test]
    fn record_and_replay_preserves_counts() {
        let trace = record_simple();
        // 8 program accesses + 2 malloc-header accesses each on alloc
        // and free.
        assert_eq!(trace.accesses(), 12);
        assert_eq!(trace.iter_accesses().count(), 12);
        assert!(!trace.is_empty());

        let mut sink = CountingSink::new();
        trace.replay(&mut sink);
        assert_eq!(sink.accesses(), 12);
        assert_eq!(sink.allocs(), 1);
        assert_eq!(sink.frees(), 1);
        assert!(sink.finished());
    }

    #[test]
    fn replay_with_snapshots_reconstructs_memory() {
        struct SnapCheck {
            seen: u32,
        }
        impl AccessSink for SnapCheck {
            fn on_access(&mut self, _a: Access) {}
            fn on_snapshot(&mut self, s: &MemorySnapshot<'_>) {
                self.seen += 1;
                // Live words hold 7 (program data) or the malloc header.
                for (_a, v) in s.iter() {
                    assert!(v == 7 || v == 0x601 || v == 0x600, "value {v:#x}");
                }
            }
        }
        let trace = record_simple();
        let mut sink = SnapCheck { seen: 0 };
        trace.replay_with_snapshots(&mut sink, 4);
        assert_eq!(sink.seen, 3); // at accesses 4, 8 and 12
    }

    #[test]
    fn replay_snapshot_respects_frees() {
        let mut buf = TraceBuffer::new();
        {
            let mut m = TracedMemory::new(&mut buf);
            let a = m.alloc(2);
            m.store(a, 1);
            m.free(a);
            let b = m.global(2);
            m.store(b, 2);
            m.store(b + 4, 3);
        }
        let trace = buf.into_trace();
        struct LastSnap(u64);
        impl AccessSink for LastSnap {
            fn on_access(&mut self, _a: Access) {}
            fn on_snapshot(&mut self, s: &MemorySnapshot<'_>) {
                self.0 = s.live_locations();
            }
        }
        let mut sink = LastSnap(999);
        trace.replay_with_snapshots(&mut sink, 3);
        // The last snapshot lands at access 6 (the store to the first
        // global): the freed heap words (and header) are gone, and one
        // global is live so far.
        assert_eq!(sink.0, 1);
    }

    #[test]
    fn prefix_truncates_at_access_boundary() {
        let trace = record_simple();
        let cut = trace.prefix(5);
        assert_eq!(cut.accesses(), 5);
        assert_eq!(cut.iter_accesses().count(), 5);
        // A prefix at least as long as the trace is the whole trace.
        let whole = trace.prefix(1_000_000);
        assert_eq!(whole.events(), trace.events());
        // Zero keeps no accesses.
        assert_eq!(trace.prefix(0).accesses(), 0);
    }

    #[test]
    fn into_prefix_matches_prefix_without_copying_full_traces() {
        let trace = record_simple();
        for cut in [0u64, 5, 12, 1_000_000] {
            let borrowed = trace.prefix(cut);
            let consumed = trace.clone().into_prefix(cut);
            assert_eq!(borrowed.events(), consumed.events(), "cut at {cut}");
            assert_eq!(borrowed.accesses(), consumed.accesses());
        }
        // The borrowing path sizes its copy exactly.
        let cut = trace.prefix(5);
        assert_eq!(cut.events.len(), cut.events.capacity());
    }

    #[test]
    fn generic_replay_matches_dyn_replay() {
        let trace = record_simple();
        let mut generic = CountingSink::new();
        trace.replay_into(&mut generic);
        let mut dynamic = CountingSink::new();
        trace.replay(&mut dynamic);
        assert_eq!(generic, dynamic);

        let mut generic = CountingSink::new();
        trace.replay_with_snapshots_into(&mut generic, 4);
        let mut dynamic = CountingSink::new();
        trace.replay_with_snapshots(&mut dynamic, 4);
        assert_eq!(generic, dynamic);
        assert_eq!(generic.snapshots(), 3);
    }

    #[test]
    fn limited_buffer_matches_into_prefix() {
        let run = |buf: &mut TraceBuffer| {
            let mut m = TracedMemory::new(buf);
            let a = m.alloc(4);
            for i in 0..4 {
                m.store_idx(a, i, 7);
            }
            let f = m.push_frame(2);
            m.store(f, 9);
            m.pop_frame();
            m.free(a);
        };
        let mut full = TraceBuffer::new();
        run(&mut full);
        let full = full.into_trace();
        for cut in [0u64, 1, 5, 7, full.accesses(), 1_000_000] {
            let mut limited = TraceBuffer::with_capacity(4).with_access_limit(cut);
            run(&mut limited);
            let limited = limited.into_trace();
            let expect = full.clone().into_prefix(cut);
            assert_eq!(limited.events(), expect.events(), "cut at {cut}");
            assert_eq!(limited.accesses(), expect.accesses());
        }
    }

    #[test]
    fn buffer_capacity_and_reserve() {
        let mut buf = TraceBuffer::with_capacity(8);
        assert!(buf.is_empty());
        buf.on_access(Access::load(0, 0));
        buf.reserve(16);
        assert_eq!(buf.len(), 1);
        assert!(buf.events.capacity() >= 17);
    }

    #[test]
    fn from_events_counts_accesses() {
        let t = Trace::from_events(vec![
            TraceEvent::Access(Access::load(0, 0)),
            TraceEvent::Access(Access::store(4, 1)),
        ]);
        assert_eq!(t.accesses(), 2);
        assert_eq!(t.len(), 2);
    }
}
