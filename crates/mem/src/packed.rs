//! Columnar (structure-of-arrays) trace storage and broadcast replay.
//!
//! The paper's methodology replays one recorded load/store stream into
//! many cache designs (Sections 3–4 evaluate 21 experiments over the
//! same traces), so replay throughput and resident trace footprint are
//! the scaling levers of the whole harness. [`Trace`] keeps an
//! array-of-structs `Vec<TraceEvent>` — a 16-byte tagged enum per event
//! for what is logically 8 bytes of word-aligned address + value.
//! [`PackedTrace`] stores the same stream column-wise:
//!
//! * `addrs` — one `u32` per access, the word-aligned byte address with
//!   the load/store bit folded into the free low bit,
//! * `values` — one `u32` per access,
//! * a small side table of [`RegionEvent`]s (allocations and frees are
//!   orders of magnitude rarer than accesses), each recording *where*
//!   in the access stream it fired.
//!
//! Replay walks the two dense arrays in runs between region-event
//! breakpoints — no per-event tag dispatch, half the memory traffic —
//! and [`PackedTrace::broadcast_into`] feeds one pass to N sinks at
//! once so a design-space sweep touches the trace `ceil(N / batch)`
//! times instead of `N` times.

use crate::access::{Access, AccessBlock, AccessKind, AccessSink, ACCESS_BLOCK};
use crate::layout::{Region, WORD_BYTES};
use crate::live::LiveSet;
use crate::sim_memory::SimMemory;
use crate::simd::{self, SimdLevel};
use crate::snapshot::MemorySnapshot;
use crate::trace::{Trace, TraceEvent};
use std::fmt;

/// Low address bit holding the access kind inside a packed address
/// word. Word alignment leaves bits 0–1 of every address free; bit 0
/// set means *store*, clear means *load*.
pub const STORE_BIT: u32 = 1;

/// Largest sink count replayed by the per-event fan-out loop of
/// [`PackedTrace::broadcast_into`]; larger batches switch to chunked
/// delivery (see [`BROADCAST_BLOCK`]).
pub const BROADCAST_INLINE_MAX: usize = 4;

/// Accesses per block in the chunked broadcast path: the block's
/// packed columns (8 bytes per access) stay resident in L1 while every
/// sink of a large batch consumes them.
pub const BROADCAST_BLOCK: usize = 4096;

/// An allocation or deallocation hoisted out of the access stream into
/// the [`PackedTrace`] side table.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub struct RegionEvent {
    /// Number of access events that precede this event in program
    /// order — i.e. the event fires after access `pos - 1` and before
    /// access `pos`. Non-decreasing across the side table.
    pub pos: u64,
    /// `true` for an allocation, `false` for a deallocation.
    pub is_alloc: bool,
    /// The region allocated or freed.
    pub region: Region,
}

impl RegionEvent {
    /// The event as a [`TraceEvent`] (for interleaved iteration).
    #[inline]
    pub fn to_event(self) -> TraceEvent {
        if self.is_alloc {
            TraceEvent::Alloc(self.region)
        } else {
            TraceEvent::Free(self.region)
        }
    }
}

/// A recorded event log in columnar form. Semantically identical to a
/// [`Trace`] (see [`PackedTrace::from_trace`] / [`PackedTrace::to_trace`])
/// but ~8 bytes per access instead of 16, with replay running
/// branchlessly over dense `u32` columns between region-event
/// breakpoints.
///
/// # Example
///
/// ```
/// use fvl_mem::{Bus, CountingSink, PackedTrace, TraceBuffer, TracedMemory};
///
/// let mut buf = TraceBuffer::new();
/// {
///     let mut mem = TracedMemory::new(&mut buf);
///     let a = mem.alloc(1);
///     mem.store(a, 3);
/// }
/// let packed = PackedTrace::from_trace(&buf.into_trace());
/// let mut sink = CountingSink::new();
/// packed.replay_into(&mut sink);
/// assert_eq!(sink.accesses(), 3);
/// assert_eq!(sink.allocs(), 1);
/// ```
#[derive(Clone, Default)]
pub struct PackedTrace {
    /// Word-aligned byte addresses with [`STORE_BIT`] folded in.
    addrs: Vec<u32>,
    /// The 32-bit value of each access.
    values: Vec<u32>,
    /// Rare allocation/free events, ordered by [`RegionEvent::pos`].
    regions: Vec<RegionEvent>,
}

impl PackedTrace {
    /// Packs an event log into columnar form.
    ///
    /// # Panics
    ///
    /// Panics if any access address is not word aligned (the packed
    /// form stores the access kind in the address's free low bits;
    /// every address produced by [`crate::TracedMemory`] is aligned).
    pub fn from_trace(trace: &Trace) -> Self {
        let accesses = trace.accesses() as usize;
        let mut addrs = Vec::with_capacity(accesses);
        let mut values = Vec::with_capacity(accesses);
        let mut regions = Vec::new();
        for event in trace.events() {
            match *event {
                TraceEvent::Access(a) => {
                    assert_eq!(
                        a.addr % WORD_BYTES,
                        0,
                        "packed traces require word-aligned addresses, got {:#x}",
                        a.addr
                    );
                    addrs.push(a.addr | if a.kind.is_store() { STORE_BIT } else { 0 });
                    values.push(a.value);
                }
                TraceEvent::Alloc(region) => regions.push(RegionEvent {
                    pos: addrs.len() as u64,
                    is_alloc: true,
                    region,
                }),
                TraceEvent::Free(region) => regions.push(RegionEvent {
                    pos: addrs.len() as u64,
                    is_alloc: false,
                    region,
                }),
            }
        }
        regions.shrink_to_fit();
        PackedTrace {
            addrs,
            values,
            regions,
        }
    }

    /// Builds a packed trace directly from its columns (used by the
    /// binary-format reader).
    ///
    /// # Errors
    ///
    /// Returns a descriptive error when the columns disagree in length,
    /// a packed address has its second-lowest bit set (the decoded
    /// address would not be word aligned), or the region side table is
    /// not ordered by position within the access stream.
    pub fn from_columns(
        addrs: Vec<u32>,
        values: Vec<u32>,
        regions: Vec<RegionEvent>,
    ) -> Result<Self, String> {
        if addrs.len() != values.len() {
            return Err(format!(
                "column length mismatch: {} addresses vs {} values",
                addrs.len(),
                values.len()
            ));
        }
        let misaligned = addrs.iter().fold(0u32, |acc, &a| acc | a) & (WORD_BYTES - 1) & !STORE_BIT;
        if misaligned != 0 {
            return Err("packed address decodes to a non-word-aligned address".to_string());
        }
        let mut prev = 0u64;
        for event in &regions {
            if event.pos < prev || event.pos > addrs.len() as u64 {
                return Err(format!(
                    "region event position {} out of order (previous {prev}, {} accesses)",
                    event.pos,
                    addrs.len()
                ));
            }
            prev = event.pos;
        }
        Ok(PackedTrace {
            addrs,
            values,
            regions,
        })
    }

    /// Expands the columns back into an array-of-structs [`Trace`].
    pub fn to_trace(&self) -> Trace {
        Trace::from_events(self.iter_events().collect())
    }

    /// The packed address column ([`STORE_BIT`] folded in).
    pub fn addrs(&self) -> &[u32] {
        &self.addrs
    }

    /// The value column.
    pub fn values(&self) -> &[u32] {
        &self.values
    }

    /// The region-event side table, ordered by position.
    pub fn region_events(&self) -> &[RegionEvent] {
        &self.regions
    }

    /// Number of access events.
    pub fn accesses(&self) -> u64 {
        self.addrs.len() as u64
    }

    /// Number of events of any kind (accesses plus region events).
    pub fn len(&self) -> usize {
        self.addrs.len() + self.regions.len()
    }

    /// Whether the trace holds no events.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty() && self.regions.is_empty()
    }

    /// Heap bytes resident for this trace (column capacities plus the
    /// side table) — the footprint the capture store pays to keep it.
    pub fn approx_bytes(&self) -> usize {
        self.addrs.capacity() * std::mem::size_of::<u32>()
            + self.values.capacity() * std::mem::size_of::<u32>()
            + self.regions.capacity() * std::mem::size_of::<RegionEvent>()
    }

    /// Resident bytes per event; ~8 for access-dominated traces versus
    /// 16 for the `Vec<TraceEvent>` representation.
    pub fn bytes_per_event(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.approx_bytes() as f64 / self.len() as f64
        }
    }

    /// Decodes the access at column index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.accesses()`.
    #[inline]
    pub fn access(&self, i: usize) -> Access {
        decode(self.addrs[i], self.values[i])
    }

    /// Iterates over access events only.
    pub fn iter_accesses(&self) -> impl Iterator<Item = Access> + '_ {
        self.addrs
            .iter()
            .zip(&self.values)
            .map(|(&a, &v)| decode(a, v))
    }

    /// Iterates over all events in program order, re-interleaving the
    /// region side table with the access columns.
    pub fn iter_events(&self) -> impl Iterator<Item = TraceEvent> + '_ {
        let mut next_access = 0usize;
        let mut next_region = 0usize;
        std::iter::from_fn(move || {
            if let Some(event) = self.regions.get(next_region) {
                if event.pos as usize <= next_access {
                    next_region += 1;
                    return Some(event.to_event());
                }
            }
            if next_access < self.addrs.len() {
                let access = self.access(next_access);
                next_access += 1;
                return Some(TraceEvent::Access(access));
            }
            None
        })
    }

    /// Returns the prefix holding at most `max_accesses` access events,
    /// keeping the region events that precede the cut exactly as
    /// [`Trace::prefix`] does.
    pub fn prefix(&self, max_accesses: u64) -> PackedTrace {
        if max_accesses >= self.accesses() {
            return self.clone();
        }
        let cut = max_accesses as usize;
        let keep = self
            .regions
            .iter()
            .filter(|e| e.pos <= max_accesses)
            .count();
        PackedTrace {
            addrs: self.addrs[..cut].to_vec(),
            values: self.values[..cut].to_vec(),
            regions: self.regions[..keep].to_vec(),
        }
    }

    /// Calls `f` with every maximal run of consecutive accesses
    /// (half-open column ranges) and every region-event breakpoint, in
    /// program order.
    #[inline]
    fn segments(&self, mut f: impl FnMut(Segment)) {
        let mut lo = 0usize;
        for &event in &self.regions {
            let hi = event.pos as usize;
            f(Segment::Run(lo, hi));
            f(Segment::Breakpoint(event));
            lo = hi;
        }
        f(Segment::Run(lo, self.addrs.len()));
    }

    /// Feeds the accesses in columns `lo..hi` to `sink` one event at a
    /// time — the scalar hot loop, and the conformance baseline the
    /// wide kernels are checked against.
    #[inline]
    fn feed<S: AccessSink + ?Sized>(&self, lo: usize, hi: usize, sink: &mut S) {
        for (&a, &v) in self.addrs[lo..hi].iter().zip(&self.values[lo..hi]) {
            sink.on_access(decode(a, v));
        }
    }

    /// Feeds columns `lo..hi` through the kernel selected by `level`.
    #[inline]
    fn feed_with<S: AccessSink + ?Sized>(
        &self,
        level: SimdLevel,
        lo: usize,
        hi: usize,
        sink: &mut S,
    ) {
        match level {
            SimdLevel::Scalar => self.feed(lo, hi, sink),
            level => self.feed_wide(level, lo, hi, sink),
        }
    }

    /// Wide path: decode up to [`ACCESS_BLOCK`] column entries per step
    /// (strip [`STORE_BIT`], harvest the store bits into a lane mask)
    /// and hand the batch to [`AccessSink::on_access_block`].
    fn feed_wide<S: AccessSink + ?Sized>(
        &self,
        level: SimdLevel,
        lo: usize,
        hi: usize,
        sink: &mut S,
    ) {
        let mut addrs = [0u32; ACCESS_BLOCK];
        let mut block = lo;
        while block < hi {
            let end = (block + ACCESS_BLOCK).min(hi);
            let n = end - block;
            let mask = simd::decode_columns(level, &self.addrs[block..end], &mut addrs[..n]);
            sink.on_access_block(&AccessBlock::new(
                &addrs[..n],
                &self.values[block..end],
                mask,
            ));
            block = end;
        }
    }

    /// Replays the trace into `sink` (accesses, allocs, frees, finish),
    /// equivalent to [`Trace::replay_into`] over the unpacked events.
    ///
    /// Accesses stream from the dense columns in runs between region
    /// breakpoints, so the loop carries no per-event tag dispatch and
    /// touches half the memory of the `Vec<TraceEvent>` walk. The
    /// decode kernel is the process-wide [`crate::simd::active_level`]
    /// (`FVL_SIMD` / [`crate::simd::set_policy`]); use
    /// [`PackedTrace::replay_into_with`] to pin one explicitly.
    pub fn replay_into<S: AccessSink + ?Sized>(&self, sink: &mut S) {
        self.replay_into_with(simd::active_level(), sink);
    }

    /// [`PackedTrace::replay_into`] with an explicit decode kernel,
    /// bypassing the process-wide policy — the A/B entry point for the
    /// lane-width benches and the scalar-vs-SIMD conformance
    /// differential.
    ///
    /// Every level delivers the identical event stream; levels above
    /// [`SimdLevel::Scalar`] batch runs into [`AccessBlock`]s, which
    /// non-overriding sinks observe as ordinary in-order
    /// [`AccessSink::on_access`] calls.
    pub fn replay_into_with<S: AccessSink + ?Sized>(&self, level: SimdLevel, sink: &mut S) {
        self.feed_into_with(level, sink);
        sink.on_finish();
    }

    /// Delivers every event of this trace to `sink` **without** calling
    /// [`AccessSink::on_finish`] — the streaming building block chunked
    /// out-of-core replay uses: one logical trace arrives as many
    /// [`PackedTrace`] pieces (see [`crate::MappedTrace`]), each fed in
    /// turn, and the caller finishes the sink exactly once at the end.
    pub fn feed_into_with<S: AccessSink + ?Sized>(&self, level: SimdLevel, sink: &mut S) {
        self.segments(|seg| match seg {
            Segment::Run(lo, hi) => self.feed_with(level, lo, hi, sink),
            Segment::Breakpoint(event) => {
                if event.is_alloc {
                    sink.on_alloc(event.region)
                } else {
                    sink.on_free(event.region)
                }
            }
        });
    }

    /// Dynamic-dispatch wrapper over [`PackedTrace::replay_into`].
    pub fn replay(&self, sink: &mut dyn AccessSink) {
        self.replay_into(sink);
    }

    /// One pass over the columns feeding every sink in `sinks`,
    /// equivalent to (but much cheaper than) replaying the trace once
    /// per sink. Events are delivered to sinks in slice order, and each
    /// sink's `on_finish` runs after the final event.
    ///
    /// Up to [`BROADCAST_INLINE_MAX`] sinks the scalar fan-out is a
    /// per-access inner loop (monomorphized over `S`, so small sink
    /// counts keep their state in registers); larger batches deliver
    /// [`BROADCAST_BLOCK`]-access column blocks to one sink at a time,
    /// so the block stays cache-resident while N sinks consume it.
    /// Under a wide kernel (the default when the CPU supports one),
    /// every batch size decodes each [`ACCESS_BLOCK`]-access block once
    /// and fans the decoded block out to all sinks.
    pub fn broadcast_into<S: AccessSink>(&self, sinks: &mut [S]) {
        self.broadcast_into_with(simd::active_level(), sinks);
    }

    /// [`PackedTrace::broadcast_into`] with an explicit decode kernel,
    /// bypassing the process-wide policy.
    pub fn broadcast_into_with<S: AccessSink>(&self, level: SimdLevel, sinks: &mut [S]) {
        match (sinks.len(), level) {
            (0, _) => return,
            (1, _) => return self.replay_into_with(level, &mut sinks[0]),
            (n, SimdLevel::Scalar) if n <= BROADCAST_INLINE_MAX => self.segments(|seg| match seg {
                Segment::Run(lo, hi) => {
                    for (&a, &v) in self.addrs[lo..hi].iter().zip(&self.values[lo..hi]) {
                        let access = decode(a, v);
                        for sink in sinks.iter_mut() {
                            sink.on_access(access);
                        }
                    }
                }
                Segment::Breakpoint(event) => deliver_region(sinks, event),
            }),
            (_, SimdLevel::Scalar) => self.segments(|seg| match seg {
                Segment::Run(lo, hi) => {
                    let mut block = lo;
                    while block < hi {
                        let end = (block + BROADCAST_BLOCK).min(hi);
                        for sink in sinks.iter_mut() {
                            self.feed(block, end, sink);
                        }
                        block = end;
                    }
                }
                Segment::Breakpoint(event) => deliver_region(sinks, event),
            }),
            (_, level) => self.segments(|seg| match seg {
                Segment::Run(lo, hi) => {
                    let mut addrs = [0u32; ACCESS_BLOCK];
                    let mut block = lo;
                    while block < hi {
                        let end = (block + ACCESS_BLOCK).min(hi);
                        let n = end - block;
                        let mask =
                            simd::decode_columns(level, &self.addrs[block..end], &mut addrs[..n]);
                        let decoded = AccessBlock::new(&addrs[..n], &self.values[block..end], mask);
                        for sink in sinks.iter_mut() {
                            sink.on_access_block(&decoded);
                        }
                        block = end;
                    }
                }
                Segment::Breakpoint(event) => deliver_region(sinks, event),
            }),
        }
        for sink in sinks {
            sink.on_finish();
        }
    }

    /// Heterogeneous-sink variant of [`PackedTrace::broadcast_into`]:
    /// one pass feeding sinks of different concrete types through
    /// dynamic dispatch. Still one trace walk instead of N.
    pub fn broadcast_dyn(&self, sinks: &mut [&mut dyn AccessSink]) {
        self.broadcast_into(sinks);
    }

    /// Replays while reconstructing memory and the live-location set,
    /// emitting a [`MemorySnapshot`] every `sample_every` accesses —
    /// equivalent to [`Trace::replay_with_snapshots_opts_into`].
    ///
    /// # Panics
    ///
    /// Panics if `sample_every` is zero.
    pub fn replay_with_snapshots_opts_into<S: AccessSink + ?Sized>(
        &self,
        sink: &mut S,
        sample_every: u64,
        track_heap_free: bool,
    ) {
        assert!(sample_every > 0, "sampling interval must be positive");
        let mut mem = SimMemory::new();
        let mut live = LiveSet::new();
        let mut count: u64 = 0;
        let mut next = sample_every;
        let mut regions = self.regions.iter().peekable();
        for i in 0..self.addrs.len() {
            while let Some(&&event) = regions.peek().filter(|e| e.pos as usize <= i) {
                regions.next();
                snapshot_region(sink, &mut live, event, track_heap_free);
            }
            let access = self.access(i);
            if access.kind.is_store() {
                mem.write(access.addr, access.value);
            }
            live.mark(access.addr);
            count += 1;
            sink.on_access(access);
            if count >= next {
                next = count + sample_every;
                let snap = MemorySnapshot::new(&mem, &live, count);
                sink.on_snapshot(&snap);
            }
        }
        for &event in regions {
            snapshot_region(sink, &mut live, event, track_heap_free);
        }
        sink.on_finish();
    }

    /// [`PackedTrace::replay_with_snapshots_opts_into`] with heap frees
    /// tracked, matching [`Trace::replay_with_snapshots_into`].
    ///
    /// # Panics
    ///
    /// Panics if `sample_every` is zero.
    pub fn replay_with_snapshots_into<S: AccessSink + ?Sized>(
        &self,
        sink: &mut S,
        sample_every: u64,
    ) {
        self.replay_with_snapshots_opts_into(sink, sample_every, true);
    }
}

/// Applies one region event during a snapshot replay: frees clear the
/// live set (heap frees only when tracked, mirroring the paper's
/// stack-only deallocation tracking), then the sink is notified.
fn snapshot_region<S: AccessSink + ?Sized>(
    sink: &mut S,
    live: &mut LiveSet,
    event: RegionEvent,
    track_heap_free: bool,
) {
    if event.is_alloc {
        sink.on_alloc(event.region);
    } else {
        if track_heap_free || event.region.kind != crate::layout::RegionKind::Heap {
            live.clear_region(&event.region);
        }
        sink.on_free(event.region);
    }
}

/// One step of a segment walk: a dense run of accesses or a region
/// event between runs.
#[derive(Copy, Clone)]
enum Segment {
    /// Half-open column range of consecutive accesses.
    Run(usize, usize),
    /// A region event firing between runs.
    Breakpoint(RegionEvent),
}

/// Delivers one region event to every sink of a broadcast.
#[inline]
fn deliver_region<S: AccessSink>(sinks: &mut [S], event: RegionEvent) {
    for sink in sinks.iter_mut() {
        if event.is_alloc {
            sink.on_alloc(event.region);
        } else {
            sink.on_free(event.region);
        }
    }
}

/// Unpacks one column pair into an [`Access`].
#[inline]
fn decode(addr: u32, value: u32) -> Access {
    // `seeded-bugs` is a TEST-ONLY mutation used by the `fvl-check`
    // conformance harness: the load/store bit is decoded inverted, so
    // every packed load replays as a store and vice versa.
    #[cfg(feature = "seeded-bugs")]
    let is_store = addr & STORE_BIT == 0;
    #[cfg(not(feature = "seeded-bugs"))]
    let is_store = addr & STORE_BIT != 0;
    Access {
        addr: addr & !STORE_BIT,
        value,
        kind: if is_store {
            AccessKind::Store
        } else {
            AccessKind::Load
        },
    }
}

impl fmt::Debug for PackedTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PackedTrace")
            .field("accesses", &self.addrs.len())
            .field("region_events", &self.regions.len())
            .finish()
    }
}

/// One pass over a trace feeding several same-typed sinks — the
/// capability batched sweep drivers need (see
/// [`PackedTrace::broadcast_into`]), abstracted over the storage layout
/// so drivers accept [`Trace`], [`PackedTrace`], or [`crate::TraceRepr`].
pub trait BroadcastReplay {
    /// Replays the full event stream once, delivering every event to
    /// every sink (slice order), then finishing each sink.
    fn broadcast_replay<S: AccessSink>(&self, sinks: &mut [S]);
}

impl BroadcastReplay for PackedTrace {
    fn broadcast_replay<S: AccessSink>(&self, sinks: &mut [S]) {
        self.broadcast_into(sinks);
    }
}

impl BroadcastReplay for Trace {
    fn broadcast_replay<S: AccessSink>(&self, sinks: &mut [S]) {
        match sinks.len() {
            0 => return,
            1 => return self.replay_into(&mut sinks[0]),
            _ => {}
        }
        for event in self.events() {
            match *event {
                TraceEvent::Access(a) => {
                    for sink in sinks.iter_mut() {
                        sink.on_access(a);
                    }
                }
                TraceEvent::Alloc(r) => {
                    for sink in sinks.iter_mut() {
                        sink.on_alloc(r);
                    }
                }
                TraceEvent::Free(r) => {
                    for sink in sinks.iter_mut() {
                        sink.on_free(r);
                    }
                }
            }
        }
        for sink in sinks {
            sink.on_finish();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::CountingSink;
    use crate::bus::{Bus, BusExt};
    use crate::trace::TraceBuffer;
    use crate::traced::TracedMemory;
    use fvl_cacheless_test_sinks::*;

    /// Minimal stats-bearing sink: counts loads/stores/allocs/frees and
    /// xors every (addr, value) so replay order differences show up.
    mod fvl_cacheless_test_sinks {
        use super::*;

        #[derive(Default, Debug, PartialEq, Eq, Clone, Copy)]
        pub struct DigestSink {
            pub loads: u64,
            pub stores: u64,
            pub allocs: u64,
            pub frees: u64,
            pub digest: u64,
            pub finished: u32,
        }

        impl AccessSink for DigestSink {
            fn on_access(&mut self, a: Access) {
                if a.kind.is_store() {
                    self.stores += 1;
                } else {
                    self.loads += 1;
                }
                self.digest = self
                    .digest
                    .wrapping_mul(0x100000001b3)
                    .wrapping_add(u64::from(a.addr) << 32 | u64::from(a.value));
            }
            fn on_alloc(&mut self, r: Region) {
                self.allocs += 1;
                self.digest = self.digest.rotate_left(7) ^ u64::from(r.base);
            }
            fn on_free(&mut self, r: Region) {
                self.frees += 1;
                self.digest = self.digest.rotate_left(11) ^ u64::from(r.base);
            }
            fn on_finish(&mut self) {
                self.finished += 1;
            }
        }
    }

    fn record_mixed() -> Trace {
        let mut buf = TraceBuffer::new();
        {
            let mut m = TracedMemory::new(&mut buf);
            let a = m.alloc(4);
            m.fill(a, 4, 7);
            let f = m.push_frame(2);
            m.store(f, 9);
            for i in 0..4 {
                let _ = m.load_idx(a, i);
            }
            m.pop_frame();
            m.free(a);
        }
        buf.into_trace()
    }

    #[test]
    fn round_trips_through_columns() {
        let trace = record_mixed();
        let packed = PackedTrace::from_trace(&trace);
        assert_eq!(packed.accesses(), trace.accesses());
        assert_eq!(packed.len(), trace.len());
        let unpacked = packed.to_trace();
        assert_eq!(unpacked.events(), trace.events());
        assert_eq!(
            packed.iter_accesses().collect::<Vec<_>>(),
            trace.iter_accesses().collect::<Vec<_>>()
        );
    }

    #[test]
    fn replay_matches_legacy_replay() {
        let trace = record_mixed();
        let packed = PackedTrace::from_trace(&trace);
        let mut legacy = DigestSink::default();
        trace.replay_into(&mut legacy);
        let mut columnar = DigestSink::default();
        packed.replay_into(&mut columnar);
        assert_eq!(legacy, columnar);
        let mut dynamic = DigestSink::default();
        packed.replay(&mut dynamic);
        assert_eq!(legacy, dynamic);
    }

    #[test]
    fn snapshot_replay_matches_legacy() {
        let trace = record_mixed();
        let packed = PackedTrace::from_trace(&trace);
        for track_heap in [true, false] {
            for every in [1u64, 3, 100] {
                let mut legacy = CountingSink::new();
                trace.replay_with_snapshots_opts_into(&mut legacy, every, track_heap);
                let mut columnar = CountingSink::new();
                packed.replay_with_snapshots_opts_into(&mut columnar, every, track_heap);
                assert_eq!(legacy, columnar, "every={every} heap={track_heap}");
            }
        }
    }

    #[test]
    fn broadcast_equals_independent_replays() {
        let trace = record_mixed();
        let packed = PackedTrace::from_trace(&trace);
        let mut reference = DigestSink::default();
        packed.replay_into(&mut reference);
        // Small-N (inline) and large-N (chunked) broadcast paths.
        for n in [2usize, 4, 5, 9] {
            let mut sinks = vec![DigestSink::default(); n];
            packed.broadcast_into(&mut sinks);
            for (i, sink) in sinks.iter().enumerate() {
                assert_eq!(sink, &reference, "sink {i} of {n}");
                assert_eq!(sink.finished, 1, "on_finish exactly once (sink {i} of {n})");
            }
        }
        // Legacy fallback delivers the same stream.
        let mut sinks = vec![DigestSink::default(); 3];
        trace.broadcast_replay(&mut sinks);
        assert!(sinks.iter().all(|s| s == &reference));
        // Heterogeneous broadcast via trait objects.
        let mut a = DigestSink::default();
        let mut b = CountingSink::new();
        packed.broadcast_dyn(&mut [&mut a, &mut b]);
        assert_eq!(a, reference);
        assert_eq!(b.accesses(), packed.accesses());
    }

    #[test]
    fn empty_and_single_sink_broadcasts() {
        let packed = PackedTrace::from_trace(&record_mixed());
        let mut none: Vec<DigestSink> = Vec::new();
        packed.broadcast_into(&mut none);
        let mut one = vec![DigestSink::default()];
        packed.broadcast_into(&mut one);
        assert_eq!(one[0].finished, 1);
    }

    #[test]
    fn chunked_broadcast_crosses_block_boundaries() {
        // More accesses than one broadcast block, with a region event
        // mid-stream, replayed to more sinks than the inline limit.
        let mut events = Vec::new();
        for i in 0..(BROADCAST_BLOCK as u32 + 100) {
            events.push(TraceEvent::Access(Access::load((i % 512) * 4, i)));
        }
        events.insert(
            17,
            TraceEvent::Alloc(Region::new(0x1000, 4, crate::layout::RegionKind::Heap)),
        );
        let trace = Trace::from_events(events);
        let packed = PackedTrace::from_trace(&trace);
        let mut reference = DigestSink::default();
        trace.replay_into(&mut reference);
        let mut sinks = vec![DigestSink::default(); BROADCAST_INLINE_MAX + 2];
        packed.broadcast_into(&mut sinks);
        assert!(sinks.iter().all(|s| s == &reference));
    }

    #[test]
    fn every_simd_level_replays_the_scalar_stream() {
        let trace = record_mixed();
        let packed = PackedTrace::from_trace(&trace);
        let mut reference = DigestSink::default();
        packed.replay_into_with(SimdLevel::Scalar, &mut reference);
        for level in SimdLevel::available() {
            let mut sink = DigestSink::default();
            packed.replay_into_with(level, &mut sink);
            assert_eq!(sink, reference, "{level:?}");
        }
    }

    #[test]
    fn wide_replay_handles_lane_and_block_boundary_lengths() {
        // Lengths straddling the SSE2/AVX2 lane widths, the unroll
        // factor, and the ACCESS_BLOCK batching boundary.
        for len in [0usize, 1, 3, 4, 5, 7, 8, 9, 63, 64, 65, 127, 128, 129] {
            let events: Vec<TraceEvent> = (0..len as u32)
                .map(|i| {
                    let access = if i % 3 == 0 {
                        Access::store(i * 4, i ^ 0xabcd)
                    } else {
                        Access::load(i * 4, i)
                    };
                    TraceEvent::Access(access)
                })
                .collect();
            let packed = PackedTrace::from_trace(&Trace::from_events(events));
            let mut reference = DigestSink::default();
            packed.replay_into_with(SimdLevel::Scalar, &mut reference);
            for level in SimdLevel::available() {
                let mut sink = DigestSink::default();
                packed.replay_into_with(level, &mut sink);
                assert_eq!(sink, reference, "{level:?} len {len}");
            }
        }
    }

    #[test]
    fn wide_replay_splits_blocks_at_region_breakpoints() {
        // Region events at positions that are not multiples of the
        // block size force partial blocks mid-stream.
        let mut events: Vec<TraceEvent> = (0..(ACCESS_BLOCK as u32 * 3))
            .map(|i| TraceEvent::Access(Access::load(i * 4, i)))
            .collect();
        let region = Region::new(0x1000, 4, crate::layout::RegionKind::Heap);
        events.insert(7, TraceEvent::Alloc(region));
        events.insert(100, TraceEvent::Free(region));
        let packed = PackedTrace::from_trace(&Trace::from_events(events));
        let mut reference = DigestSink::default();
        packed.replay_into_with(SimdLevel::Scalar, &mut reference);
        for level in SimdLevel::available() {
            let mut sink = DigestSink::default();
            packed.replay_into_with(level, &mut sink);
            assert_eq!(sink, reference, "{level:?}");
        }
    }

    #[test]
    fn wide_broadcast_equals_scalar_broadcast() {
        let trace = record_mixed();
        let packed = PackedTrace::from_trace(&trace);
        let mut reference = DigestSink::default();
        packed.replay_into_with(SimdLevel::Scalar, &mut reference);
        for level in SimdLevel::available() {
            for n in [1usize, 2, 4, 5, 9] {
                let mut sinks = vec![DigestSink::default(); n];
                packed.broadcast_into_with(level, &mut sinks);
                for (i, sink) in sinks.iter().enumerate() {
                    assert_eq!(sink, &reference, "{level:?} sink {i} of {n}");
                    assert_eq!(sink.finished, 1, "{level:?} sink {i} of {n}");
                }
            }
        }
    }

    #[test]
    fn prefix_matches_legacy_prefix() {
        let trace = record_mixed();
        let packed = PackedTrace::from_trace(&trace);
        for cut in [0u64, 1, 5, trace.accesses(), 1_000_000] {
            let legacy = PackedTrace::from_trace(&trace.prefix(cut));
            let columnar = packed.prefix(cut);
            assert_eq!(legacy.addrs(), columnar.addrs(), "cut {cut}");
            assert_eq!(legacy.values(), columnar.values(), "cut {cut}");
            assert_eq!(
                legacy.region_events(),
                columnar.region_events(),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn footprint_is_near_eight_bytes_per_access() {
        // Region events are rare in real workloads; model that mix.
        let mut buf = TraceBuffer::new();
        {
            let mut m = TracedMemory::new(&mut buf);
            let a = m.alloc(64);
            for round in 0..20u32 {
                m.fill(a, 64, round);
            }
            m.free(a);
        }
        let packed = PackedTrace::from_trace(&buf.into_trace());
        assert!(
            packed.bytes_per_event() <= 8.5,
            "{}",
            packed.bytes_per_event()
        );
        // The legacy representation pays 16 bytes per event.
        assert_eq!(std::mem::size_of::<TraceEvent>(), 16);
    }

    #[test]
    fn from_columns_validates() {
        assert!(PackedTrace::from_columns(vec![0, 4], vec![1], vec![]).is_err());
        assert!(PackedTrace::from_columns(vec![2], vec![1], vec![]).is_err());
        let out_of_order = vec![
            RegionEvent {
                pos: 1,
                is_alloc: true,
                region: Region::new(0, 1, crate::layout::RegionKind::Heap),
            },
            RegionEvent {
                pos: 0,
                is_alloc: false,
                region: Region::new(0, 1, crate::layout::RegionKind::Heap),
            },
        ];
        assert!(PackedTrace::from_columns(vec![0, 4], vec![1, 2], out_of_order).is_err());
        let ok = PackedTrace::from_columns(vec![STORE_BIT, 4], vec![1, 2], vec![]).unwrap();
        assert_eq!(ok.access(0), Access::store(0, 1));
        assert_eq!(ok.access(1), Access::load(4, 2));
    }

    #[test]
    #[should_panic(expected = "word-aligned")]
    fn misaligned_access_is_rejected() {
        let trace = Trace::from_events(vec![TraceEvent::Access(Access::load(0x1002, 0))]);
        let _ = PackedTrace::from_trace(&trace);
    }
}
