//! Periodic views of live memory contents.

use crate::layout::{Addr, Word};
use crate::live::LiveSet;
use crate::sim_memory::SimMemory;
use std::fmt;

/// A read-only view of the *interesting* memory contents at one instant.
///
/// Snapshots are handed to [`crate::AccessSink::on_snapshot`] every N
/// accesses; they drive the paper's "frequently occurring value" study
/// (Figures 1–3) and the spatial-distribution study (Figure 5).
pub struct MemorySnapshot<'a> {
    mem: &'a SimMemory,
    live: &'a LiveSet,
    /// Number of accesses performed when the snapshot was taken.
    access_count: u64,
}

impl<'a> MemorySnapshot<'a> {
    /// Creates a snapshot view over the given memory and live set.
    pub fn new(mem: &'a SimMemory, live: &'a LiveSet, access_count: u64) -> Self {
        MemorySnapshot {
            mem,
            live,
            access_count,
        }
    }

    /// Number of accesses performed at snapshot time (the snapshot clock).
    pub fn access_count(&self) -> u64 {
        self.access_count
    }

    /// Number of interesting locations in the snapshot.
    pub fn live_locations(&self) -> u64 {
        self.live.len()
    }

    /// Value currently stored at `addr`.
    pub fn value_at(&self, addr: Addr) -> Word {
        self.mem.read(addr)
    }

    /// Whether `addr` is an interesting location.
    pub fn is_live(&self, addr: Addr) -> bool {
        self.live.contains(addr)
    }

    /// Iterates over `(address, value)` for every interesting location,
    /// in no particular order (fast path for histogramming).
    pub fn iter(&self) -> impl Iterator<Item = (Addr, Word)> + '_ {
        self.live
            .iter()
            .map(move |addr| (addr, self.mem.read(addr)))
    }

    /// Iterates over `(address, value)` in ascending address order
    /// (needed by spatially ordered analyses such as Figure 5).
    pub fn iter_sorted(&self) -> impl Iterator<Item = (Addr, Word)> + '_ {
        self.live
            .iter_sorted()
            .map(move |addr| (addr, self.mem.read(addr)))
    }
}

impl fmt::Debug for MemorySnapshot<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MemorySnapshot")
            .field("access_count", &self.access_count)
            .field("live_locations", &self.live.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_sees_live_values_only() {
        let mut mem = SimMemory::new();
        let mut live = LiveSet::new();
        mem.write(0x100, 5);
        mem.write(0x104, 6);
        live.mark(0x100); // 0x104 written but (hypothetically) not tracked
        let snap = MemorySnapshot::new(&mem, &live, 42);
        assert_eq!(snap.access_count(), 42);
        assert_eq!(snap.live_locations(), 1);
        assert!(snap.is_live(0x100));
        assert!(!snap.is_live(0x104));
        let all: Vec<_> = snap.iter_sorted().collect();
        assert_eq!(all, vec![(0x100, 5)]);
        assert_eq!(snap.value_at(0x104), 6);
    }

    #[test]
    fn snapshot_iter_sorted_is_sorted() {
        let mut mem = SimMemory::new();
        let mut live = LiveSet::new();
        for (i, &a) in [0x5000u32, 0x10, 0x3000, 0x2ffc].iter().enumerate() {
            mem.write(a, i as u32);
            live.mark(a);
        }
        let snap = MemorySnapshot::new(&mem, &live, 0);
        let addrs: Vec<_> = snap.iter_sorted().map(|(a, _)| a).collect();
        let mut sorted = addrs.clone();
        sorted.sort_unstable();
        assert_eq!(addrs, sorted);
        assert_eq!(addrs.len(), 4);
    }
}
