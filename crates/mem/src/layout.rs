//! Address-space layout and basic vocabulary types.
//!
//! The simulated address space mirrors a classic 32-bit Unix process so
//! that pointer *values* stored into memory resemble those the paper
//! reports as frequent values (Table 1 contains heap addresses such as
//! `0x40234974` next to small integers and `0xffffffff`).

use std::fmt;

/// A byte address in the simulated 32-bit address space.
///
/// All word operations require 4-byte alignment.
pub type Addr = u32;

/// A 32-bit data word, the unit the frequent value study operates on.
pub type Word = u32;

/// Number of bytes in a simulated machine word.
pub const WORD_BYTES: u32 = 4;

/// Base byte address of the global/static data region.
pub const GLOBAL_BASE: Addr = 0x0001_0000;

/// Base byte address of the heap; heap allocations grow upward from here.
pub const HEAP_BASE: Addr = 0x4000_0000;

/// Initial stack pointer; stack frames grow downward from here.
pub const STACK_BASE: Addr = 0x8000_0000;

/// Which allocator a [`Region`] belongs to.
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug)]
pub enum RegionKind {
    /// Static data, allocated for the whole run.
    Global,
    /// Heap data obtained from [`crate::Bus::alloc`].
    Heap,
    /// Stack data obtained from [`crate::Bus::push_frame`].
    Stack,
}

impl fmt::Display for RegionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RegionKind::Global => "global",
            RegionKind::Heap => "heap",
            RegionKind::Stack => "stack",
        };
        f.write_str(s)
    }
}

/// A contiguous word-aligned span of simulated memory.
///
/// Regions are reported to [`crate::AccessSink`]s on allocation and
/// deallocation so that analyses can track the paper's notion of
/// *interesting* locations (referenced and not deallocated since).
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub struct Region {
    /// First byte address of the region (4-byte aligned).
    pub base: Addr,
    /// Length in 32-bit words.
    pub words: u32,
    /// Owning allocator.
    pub kind: RegionKind,
}

impl Region {
    /// Creates a region.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not word aligned or the region wraps the
    /// address space.
    pub fn new(base: Addr, words: u32, kind: RegionKind) -> Self {
        assert_eq!(
            base % WORD_BYTES,
            0,
            "region base {base:#x} not word aligned"
        );
        assert!(
            (base as u64) + (words as u64) * (WORD_BYTES as u64) <= u32::MAX as u64 + 1,
            "region wraps the 32-bit address space"
        );
        Region { base, words, kind }
    }

    /// One-past-the-end byte address.
    #[inline]
    pub fn end(&self) -> u64 {
        self.base as u64 + self.words as u64 * WORD_BYTES as u64
    }

    /// Whether `addr` falls inside the region.
    #[inline]
    pub fn contains(&self, addr: Addr) -> bool {
        addr >= self.base && (addr as u64) < self.end()
    }

    /// Iterates over the word-aligned byte addresses in the region.
    pub fn word_addrs(&self) -> impl Iterator<Item = Addr> + '_ {
        (0..self.words).map(move |i| self.base + i * WORD_BYTES)
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} region [{:#010x}, +{} words)",
            self.kind, self.base, self.words
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_contains_and_end() {
        let r = Region::new(0x1000, 4, RegionKind::Heap);
        assert!(r.contains(0x1000));
        assert!(r.contains(0x100c));
        assert!(!r.contains(0x1010));
        assert!(!r.contains(0x0fff));
        assert_eq!(r.end(), 0x1010);
    }

    #[test]
    fn region_word_addrs() {
        let r = Region::new(0x20, 3, RegionKind::Stack);
        let addrs: Vec<_> = r.word_addrs().collect();
        assert_eq!(addrs, vec![0x20, 0x24, 0x28]);
    }

    #[test]
    #[should_panic(expected = "not word aligned")]
    fn region_rejects_misaligned_base() {
        let _ = Region::new(0x1001, 1, RegionKind::Heap);
    }

    #[test]
    #[should_panic(expected = "wraps")]
    fn region_rejects_wrapping() {
        let _ = Region::new(0xffff_fffc, 2, RegionKind::Heap);
    }

    #[test]
    fn region_at_top_of_address_space_is_ok() {
        let r = Region::new(0xffff_fffc, 1, RegionKind::Global);
        assert!(r.contains(0xffff_fffc));
        assert_eq!(r.end(), 0x1_0000_0000);
    }

    #[test]
    fn display_forms() {
        assert_eq!(RegionKind::Heap.to_string(), "heap");
        let r = Region::new(0x40, 2, RegionKind::Global);
        assert_eq!(r.to_string(), "global region [0x00000040, +2 words)");
    }
}
