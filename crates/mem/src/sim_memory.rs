//! Sparse paged backing store for the simulated 32-bit address space.

use crate::layout::{Addr, Word, WORD_BYTES};
use std::cell::Cell;
use std::collections::HashMap;
use std::fmt;

/// Words per page (4 KiB pages).
pub(crate) const PAGE_WORDS: usize = 1024;
const PAGE_SHIFT: u32 = 12; // 4096 bytes

type Page = [Word; PAGE_WORDS];

/// Sparse, paged, word-addressable simulated memory.
///
/// Pages are materialized on first touch; untouched memory reads as zero,
/// like freshly mapped pages on a real OS. `SimMemory` itself performs no
/// tracing — that is [`crate::TracedMemory`]'s job.
///
/// Pages live in an append-only arena and are located through a page
/// table plus a one-entry last-page cache (a software "TLB"): word
/// accesses exhibit strong page locality, so the common case skips the
/// page-table hash lookup entirely. Arena slots are never freed or
/// reordered while the memory is alive, which is what makes the cached
/// slot index safe to reuse.
///
/// # Example
///
/// ```
/// use fvl_mem::SimMemory;
///
/// let mut mem = SimMemory::new();
/// assert_eq!(mem.read(0x8000), 0);
/// mem.write(0x8000, 0xdead_beef);
/// assert_eq!(mem.read(0x8000), 0xdead_beef);
/// ```
#[derive(Clone, Default)]
pub struct SimMemory {
    /// Page number -> arena slot.
    table: HashMap<u32, u32>,
    /// Materialized pages, in first-touch order; never shrinks.
    arena: Vec<Box<Page>>,
    /// Last (page number, arena slot) translated, if any.
    last: Cell<Option<(u32, u32)>>,
}

impl SimMemory {
    /// Creates an empty (all-zero) memory.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn split(addr: Addr) -> (u32, usize) {
        debug_assert_eq!(addr % WORD_BYTES, 0, "unaligned word address {addr:#x}");
        (
            addr >> PAGE_SHIFT,
            ((addr >> 2) as usize) & (PAGE_WORDS - 1),
        )
    }

    /// Arena slot for `page`, consulting the one-entry cache first.
    #[inline]
    fn lookup(&self, page: u32) -> Option<u32> {
        if let Some((cached, slot)) = self.last.get() {
            if cached == page {
                return Some(slot);
            }
        }
        let slot = *self.table.get(&page)?;
        self.last.set(Some((page, slot)));
        Some(slot)
    }

    /// Reads the word at `addr`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `addr` is not 4-byte aligned.
    #[inline]
    pub fn read(&self, addr: Addr) -> Word {
        let (page, idx) = Self::split(addr);
        match self.lookup(page) {
            Some(slot) => self.arena[slot as usize][idx],
            None => 0,
        }
    }

    /// Writes the word at `addr`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `addr` is not 4-byte aligned.
    #[inline]
    pub fn write(&mut self, addr: Addr, value: Word) {
        let (page, idx) = Self::split(addr);
        if let Some(slot) = self.lookup(page) {
            self.arena[slot as usize][idx] = value;
            return;
        }
        if value == 0 {
            // Writing zero into an unmaterialized page is a no-op.
            return;
        }
        let slot = u32::try_from(self.arena.len()).expect("fewer than 2^32 pages");
        self.arena.push(Box::new([0; PAGE_WORDS]));
        self.table.insert(page, slot);
        self.last.set(Some((page, slot)));
        self.arena[slot as usize][idx] = value;
    }

    /// Number of materialized 4 KiB pages.
    pub fn resident_pages(&self) -> usize {
        self.arena.len()
    }

    /// Resident simulated bytes (materialized pages only).
    pub fn resident_bytes(&self) -> usize {
        self.arena.len() * PAGE_WORDS * WORD_BYTES as usize
    }
}

impl fmt::Debug for SimMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimMemory")
            .field("resident_pages", &self.arena.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_memory_reads_zero() {
        let mem = SimMemory::new();
        assert_eq!(mem.read(0), 0);
        assert_eq!(mem.read(0xffff_fffc), 0);
        assert_eq!(mem.resident_pages(), 0);
    }

    #[test]
    fn write_then_read_round_trips() {
        let mut mem = SimMemory::new();
        mem.write(0x1234_5678 & !3, 99);
        assert_eq!(mem.read(0x1234_5678 & !3), 99);
    }

    #[test]
    fn zero_write_to_untouched_page_allocates_nothing() {
        let mut mem = SimMemory::new();
        mem.write(0x4000, 0);
        assert_eq!(mem.resident_pages(), 0);
        mem.write(0x4000, 5);
        assert_eq!(mem.resident_pages(), 1);
        assert_eq!(mem.resident_bytes(), 4096);
    }

    #[test]
    fn adjacent_words_do_not_alias() {
        let mut mem = SimMemory::new();
        mem.write(0x100, 1);
        mem.write(0x104, 2);
        assert_eq!(mem.read(0x100), 1);
        assert_eq!(mem.read(0x104), 2);
    }

    #[test]
    fn page_boundary_words_are_independent() {
        let mut mem = SimMemory::new();
        mem.write(0x0ffc, 7); // last word of page 0
        mem.write(0x1000, 8); // first word of page 1
        assert_eq!(mem.read(0x0ffc), 7);
        assert_eq!(mem.read(0x1000), 8);
        assert_eq!(mem.resident_pages(), 2);
    }

    #[test]
    fn page_cache_survives_interleaving_and_clone() {
        let mut mem = SimMemory::new();
        // Alternate between two pages so the one-entry cache keeps
        // being evicted and refilled.
        for i in 0..PAGE_WORDS as u32 {
            mem.write(i * 4, i);
            mem.write(0x10_0000 + i * 4, !i);
        }
        for i in 0..PAGE_WORDS as u32 {
            assert_eq!(mem.read(i * 4), i);
            assert_eq!(mem.read(0x10_0000 + i * 4), !i);
        }
        assert_eq!(mem.resident_pages(), 2);
        // A clone carries the same contents and an equally valid cache.
        let copy = mem.clone();
        assert_eq!(copy.read(4), 1);
        assert_eq!(copy.read(0x10_0004), !1);
        // Writes to the original do not leak into the clone.
        mem.write(4, 999);
        assert_eq!(copy.read(4), 1);
    }

    #[test]
    fn top_of_address_space_is_addressable() {
        let mut mem = SimMemory::new();
        mem.write(0xffff_fffc, 0xabcd);
        assert_eq!(mem.read(0xffff_fffc), 0xabcd);
    }
}
