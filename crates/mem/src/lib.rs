//! Simulated 32-bit memory substrate with access tracing.
//!
//! This crate replaces the instrumented-execution substrate of the ASPLOS
//! 2000 paper *Frequent Value Locality and Value-Centric Data Cache Design*:
//! where the authors ran SPEC95 binaries and collected load/store traces, we
//! run synthetic workload programs (see the `fvl-workloads` crate) against a
//! simulated, word-addressable, 32-bit memory that records every access.
//!
//! # Architecture
//!
//! * [`SimMemory`] — sparse paged storage for the full 32-bit address space.
//! * [`Bus`] — the interface workloads program against: word loads/stores
//!   plus heap allocation and stack-frame management.
//! * [`TracedMemory`] — the canonical [`Bus`] implementation; it owns the
//!   memory, tracks *interesting* (referenced and still allocated) locations,
//!   and forwards every event to an [`AccessSink`].
//! * [`AccessSink`] — consumer interface implemented by profilers and cache
//!   simulators; [`Fanout`] feeds several sinks in one pass.
//! * [`Trace`] / [`TraceBuffer`] — an in-memory event log that can be
//!   replayed into sinks, so one workload execution can drive arbitrarily
//!   many cache configurations.
//! * [`PackedTrace`] — the same log in columnar (SoA) form: ~8 bytes per
//!   access instead of 16, branchless replay, and broadcast replay that
//!   feeds N sinks in one pass. [`TraceRepr`] selects between the two
//!   layouts at runtime behind one API.
//! * [`MappedTrace`] — out-of-core access to the chunk-indexed v2.1
//!   trace-file format: the file stays memory-mapped (with a buffered
//!   fallback) and [`CHUNK_ACCESSES`]-sized chunks decode lazily, so one
//!   chunk's columns are resident at a time no matter how large the
//!   trace is.
//! * [`MemorySnapshot`] — a periodic view of live memory contents used by
//!   the paper's "frequently *occurring* value" sampling (every 10M
//!   instructions in the paper; every N accesses here).
//!
//! # Example
//!
//! ```
//! use fvl_mem::{Bus, CountingSink, TracedMemory};
//!
//! let mut sink = CountingSink::default();
//! let mut mem = TracedMemory::new(&mut sink);
//! let buf = mem.alloc(4);
//! mem.store(buf, 42);
//! assert_eq!(mem.load(buf), 42);
//! mem.free(buf);
//! mem.finish();
//! // 2 program accesses + 2 malloc-header accesses each on alloc/free.
//! assert_eq!(sink.accesses(), 6);
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod access;
mod alloc;
mod bus;
pub mod frame;
mod layout;
mod live;
mod mapped;
mod mmap;
mod packed;
mod repr;
mod sim_memory;
pub mod simd;
mod snapshot;
mod trace;
mod trace_io;
mod traced;
pub mod varint;

pub use access::{
    Access, AccessBlock, AccessKind, AccessSink, CountingSink, Fanout, NullSink, ACCESS_BLOCK,
};
pub use alloc::{HeapAllocator, StackAllocator};
pub use bus::{Bus, BusExt};
pub use layout::{Addr, Region, RegionKind, Word, GLOBAL_BASE, HEAP_BASE, STACK_BASE, WORD_BYTES};
pub use live::LiveSet;
pub use mapped::{ChunkCacheStats, MappedTrace};
pub use mmap::MapSource;
pub use packed::{
    BroadcastReplay, PackedTrace, RegionEvent, BROADCAST_BLOCK, BROADCAST_INLINE_MAX, STORE_BIT,
};
pub use repr::{TraceRepr, TraceReprKind};
pub use sim_memory::SimMemory;
pub use simd::{SimdLevel, SimdPolicy};
pub use snapshot::MemorySnapshot;
pub use trace::{Trace, TraceBuffer, TraceEvent};
pub use trace_io::{AddrCodec, CHUNK_ACCESSES, CHUNK_BYTES};
pub use traced::TracedMemory;
