//! Delta + varint compression of the packed address column.
//!
//! The v2.1 trace format (`FVLTRC21`, see `trace_io`) stores
//! each chunk's address column as zigzag-encoded word deltas in LEB128
//! varints instead of raw `u32`s. Access streams are overwhelmingly
//! local — consecutive addresses usually sit a few words apart — so
//! most deltas fit one or two bytes and the on-disk column shrinks to
//! well under half its resident size.
//!
//! Token layout, per access (addresses are word aligned, so bits 0–1
//! of the packed form are free — bit 0 is [`crate::STORE_BIT`]):
//!
//! ```text
//! word  = packed_addr >> 2            (the word index)
//! delta = word - previous_word        (signed; previous starts at 0)
//! token = zigzag(delta) << 1 | store  (store = packed_addr & 1)
//! ```
//!
//! and the token is LEB128-encoded (7 value bits per byte, high bit =
//! continuation). The delta chain restarts at zero for every chunk, so
//! chunks decode independently — the property the memory-mapped lazy
//! reader ([`crate::MappedTrace`]) relies on.
//!
//! The v2.2 format (`FVLTRC22`) keeps the same tokens but stores them
//! **stream-split** (Stream-VByte style): a control stream of 2-bit
//! length codes (one byte per four tokens, lane 0 in bits 0–1, unused
//! high lanes of the last byte zero) followed by a payload stream of
//! the tokens' little-endian bytes, trimmed to their 1–4 byte length.
//! Moving the length codes out of the data bytes removes the
//! byte-at-a-time continuation chain from the decode hot loop: the
//! scalar decoder does one masked `u32` load per token, and the
//! SSSE3/AVX2 kernels ([`decode_addr_chunk_split_into_with`]) expand
//! 4–8 tokens per shuffle from a 256-entry control-byte table and
//! reconstruct the delta chain with an in-register prefix sum.

use crate::simd::{self, SimdLevel};
use std::io;

/// Worst-case encoded bytes per address: a 32-bit word delta zigzags
/// into ≤ 31 significant bits, plus the store bit, is ≤ 32 bits — five
/// LEB128 bytes. Readers use this to bound hostile `addr_bytes` fields
/// before allocating.
pub const MAX_VARINT_BYTES_PER_ADDR: usize = 5;

/// Largest word index a packed `u32` address can carry (the address's
/// two low bits hold the store bit and the alignment pad).
const MAX_WORD: i64 = (u32::MAX >> 2) as i64;

/// Maps a signed delta onto the unsigned varint domain: small
/// magnitudes of either sign become small codes (0, -1, 1, -2, …).
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Appends `v` to `out` as an LEB128 varint (7 bits per byte,
/// little-endian groups, high bit set on every byte but the last).
#[inline]
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decodes one LEB128 varint from `bytes` starting at `*pos`,
/// advancing `*pos` past it.
///
/// # Errors
///
/// Fails with `UnexpectedEof` when the slice ends mid-varint and
/// `InvalidData` when the encoding runs past 10 bytes (more than a
/// `u64` can hold).
#[inline]
pub fn take_varint(bytes: &[u8], pos: &mut usize) -> io::Result<u64> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let Some(&byte) = bytes.get(*pos) else {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "varint truncated",
            ));
        };
        *pos += 1;
        if shift >= 64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "varint longer than 10 bytes",
            ));
        }
        value |= u64::from(byte & 0x7f) << shift;
        // `seeded-bugs` is a TEST-ONLY mutation used by the `fvl-check`
        // conformance harness: the continuation test is off by one, so
        // a varint whose final byte is exactly 0x7f is misread as
        // continuing into the next byte.
        #[cfg(feature = "seeded-bugs")]
        let done = byte < 0x7f;
        #[cfg(not(feature = "seeded-bugs"))]
        let done = byte < 0x80;
        if done {
            return Ok(value);
        }
        shift += 7;
    }
}

/// Encodes one chunk's packed address column (raw `u32`s with
/// [`crate::STORE_BIT`] folded in) as delta + varint tokens, appending
/// to `out`. The delta chain starts at word 0.
pub fn encode_addr_chunk(addrs: &[u32], out: &mut Vec<u8>) {
    let mut prev: i64 = 0;
    for &raw in addrs {
        let store = u64::from(raw & 1);
        let word = i64::from(raw >> 2);
        let token = zigzag(word - prev) << 1 | store;
        put_varint(out, token);
        prev = word;
    }
}

/// Decodes exactly `count` addresses from an [`encode_addr_chunk`]
/// payload, requiring the payload to be fully consumed.
///
/// # Errors
///
/// Fails with `UnexpectedEof` on a truncated payload and `InvalidData`
/// when a delta walks outside the 30-bit word space, a varint
/// overflows, or bytes are left over after the last address.
pub fn decode_addr_chunk(bytes: &[u8], count: usize) -> io::Result<Vec<u32>> {
    let mut addrs = Vec::new();
    decode_addr_chunk_into(bytes, count, &mut addrs)?;
    Ok(addrs)
}

/// [`decode_addr_chunk`] appending into a caller-owned column, so a
/// multi-chunk reader decodes every chunk straight into the final
/// buffer instead of staging each one through a fresh allocation.
///
/// # Errors
///
/// Same conditions as [`decode_addr_chunk`].
pub fn decode_addr_chunk_into(bytes: &[u8], count: usize, out: &mut Vec<u32>) -> io::Result<()> {
    out.reserve(count.min(1 << 24));
    let mut pos = 0usize;
    let mut prev: i64 = 0;
    // A byte-at-a-time loop, measured fastest here: windowed u64 loads
    // with continuation-bitmask boundary finding were tried and lost to
    // this loop on real traces (the extra shift/mask machinery costs
    // more than the serial byte chain saves on a narrow core), so
    // [`take_varint`] stays the single decode authority.
    for _ in 0..count {
        let token = take_varint(bytes, &mut pos)?;
        prev = emit_token(out, prev, token)?;
    }
    if pos != bytes.len() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "{} trailing bytes after the last address",
                bytes.len() - pos
            ),
        ));
    }
    Ok(())
}

/// Applies one decoded token to the delta chain: bounds-checks the
/// reconstructed word, pushes the packed address, returns the new
/// `prev`.
#[inline]
fn emit_token(out: &mut Vec<u32>, prev: i64, token: u64) -> io::Result<i64> {
    let word = prev + unzigzag(token >> 1);
    // One unsigned compare covers both bounds: a negative word wraps
    // to a huge u64.
    if word as u64 > MAX_WORD as u64 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("address delta leaves the 32-bit word space (word {word})"),
        ));
    }
    out.push((word as u32) << 2 | (token as u32 & 1));
    Ok(word)
}

/// Worst-case split-codec **payload** bytes per address (a token is at
/// most four little-endian bytes); the control stream adds
/// `count.div_ceil(4)` bytes on top. Readers use both to bound hostile
/// `addr_bytes` fields before allocating.
pub const MAX_SPLIT_BYTES_PER_ADDR: usize = 4;

/// Length in bytes (1–4) of the token in `lane` (0–3) of a split-codec
/// control byte. This is the single length authority: the scalar
/// decoder reads it directly and the SIMD shuffle/length tables are
/// const-built from it.
#[inline]
const fn lane_len(control: u8, lane: usize) -> usize {
    let len = ((control >> (2 * lane)) & 3) as usize + 1;
    // `seeded-bugs` is a TEST-ONLY mutation used by the `fvl-check`
    // conformance harness: the length-table entry for control byte
    // 0x00, lane 0 reads 2 bytes instead of 1, so every all-short
    // group decodes shifted. The encoder computes lengths from the
    // token values and never consults this table, so round-trips (and
    // the per-level digest differentials) catch the flip.
    #[cfg(feature = "seeded-bugs")]
    let len = if control == 0 && lane == 0 { 2 } else { len };
    len
}

/// Total payload bytes one control byte's four tokens occupy.
#[cfg(target_arch = "x86_64")]
const fn group_bytes(control: u8) -> usize {
    lane_len(control, 0) + lane_len(control, 1) + lane_len(control, 2) + lane_len(control, 3)
}

/// Per-control-byte `pshufb` masks expanding four trimmed tokens into
/// four `u32` lanes (0x80 entries zero the unused high bytes).
#[cfg(target_arch = "x86_64")]
const SPLIT_SHUFFLE: [[u8; 16]; 256] = {
    let mut table = [[0x80u8; 16]; 256];
    let mut c = 0usize;
    while c < 256 {
        let mut src = 0usize;
        let mut lane = 0usize;
        while lane < 4 {
            let len = lane_len(c as u8, lane);
            let mut b = 0usize;
            while b < len {
                table[c][lane * 4 + b] = (src + b) as u8;
                b += 1;
            }
            src += len;
            lane += 1;
        }
        c += 1;
    }
    table
};

/// Total payload bytes per control byte, for advancing the payload
/// cursor one shuffle at a time.
#[cfg(target_arch = "x86_64")]
const SPLIT_GROUP_BYTES: [u8; 256] = {
    let mut table = [0u8; 256];
    let mut c = 0usize;
    while c < 256 {
        table[c] = group_bytes(c as u8) as u8;
        c += 1;
    }
    table
};

/// Low-byte masks for a token of `len` bytes, indexed by `len - 1`.
const TOKEN_MASK: [u32; 4] = [0xff, 0xffff, 0x00ff_ffff, 0xffff_ffff];

/// Encodes one chunk's packed address column in the v2.2 split layout
/// (control stream, then payload stream), appending to `out`. The
/// delta chain starts at word 0, exactly as for [`encode_addr_chunk`].
pub fn encode_addr_chunk_split(addrs: &[u32], out: &mut Vec<u8>) {
    let control_at = out.len();
    out.resize(control_at + addrs.len().div_ceil(4), 0);
    let mut prev: i64 = 0;
    for (i, &raw) in addrs.iter().enumerate() {
        let store = u64::from(raw & 1);
        let word = i64::from(raw >> 2);
        let token = (zigzag(word - prev) << 1 | store) as u32;
        // Length from the value itself: 1 + position of the highest
        // set byte (`| 1` keeps token 0 at one byte).
        let len = 4 - (token | 1).leading_zeros() as usize / 8;
        out[control_at + i / 4] |= ((len - 1) as u8) << (2 * (i % 4));
        out.extend_from_slice(&token.to_le_bytes()[..len]);
        prev = word;
    }
}

/// Splits a v2.2 address column into its control and payload streams,
/// validating the control-stream length and that the unused high lanes
/// of a partial final control byte are zero (the canonical encoding —
/// rejecting the alternatives keeps encode/decode a bijection).
fn split_streams(bytes: &[u8], count: usize) -> io::Result<(&[u8], &[u8])> {
    let control_bytes = count.div_ceil(4);
    if bytes.len() < control_bytes {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "split control stream truncated",
        ));
    }
    let (control, payload) = bytes.split_at(control_bytes);
    let tail_lanes = count % 4;
    if tail_lanes != 0 && control[control_bytes - 1] >> (2 * tail_lanes) != 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "non-canonical padding in the final control byte",
        ));
    }
    Ok((control, payload))
}

/// Decodes exactly `count` addresses from an [`encode_addr_chunk_split`]
/// column with the portable scalar kernel, requiring the payload to be
/// fully consumed.
///
/// # Errors
///
/// Fails with `UnexpectedEof` on a truncated control or payload stream
/// and `InvalidData` when a delta walks outside the 30-bit word space,
/// the final control byte has non-canonical padding, or payload bytes
/// are left over after the last address.
pub fn decode_addr_chunk_split(bytes: &[u8], count: usize) -> io::Result<Vec<u32>> {
    let mut addrs = Vec::new();
    decode_addr_chunk_split_into_with(bytes, count, SimdLevel::Scalar, &mut addrs)?;
    Ok(addrs)
}

/// [`decode_addr_chunk_split`] appending into a caller-owned column
/// with an explicit decode kernel. Every [`SimdLevel`] produces
/// byte-identical output (and identical errors on corrupt input); on
/// error nothing is appended to `out`.
///
/// # Errors
///
/// Same conditions as [`decode_addr_chunk_split`].
pub fn decode_addr_chunk_split_into_with(
    bytes: &[u8],
    count: usize,
    level: SimdLevel,
    out: &mut Vec<u32>,
) -> io::Result<()> {
    let (control, payload) = split_streams(bytes, count)?;
    let start = out.len();
    out.reserve(count.min(1 << 24));
    let result = match simd::split_kernel(level) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `split_kernel` only selects the vector kernels after
        // runtime feature detection said the ISA exists.
        simd::SplitKernel::Avx2 => unsafe { decode_split_avx2(control, payload, count, out) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above — SSSE3 was runtime-detected.
        simd::SplitKernel::Ssse3 => unsafe { decode_split_ssse3(control, payload, count, out) },
        simd::SplitKernel::Scalar => {
            decode_split_scalar_from(control, payload, count, 0, 0, 0, out)
        }
    };
    if result.is_err() {
        out.truncate(start);
    }
    result
}

#[inline]
fn load_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4-byte slice"))
}

/// The scalar split kernel, resumable at group boundary `i` (token
/// index, multiple of 4) with payload cursor `p` and delta-chain state
/// `prev` — the SIMD kernels hand their tails (and any group that
/// fails the range check) to this function so every level reports the
/// identical error.
fn decode_split_scalar_from(
    control: &[u8],
    payload: &[u8],
    count: usize,
    mut i: usize,
    mut p: usize,
    mut prev: i64,
    out: &mut Vec<u32>,
) -> io::Result<()> {
    debug_assert_eq!(i % 4, 0, "resume point must be a group boundary");
    // Hot loop: full groups with 16 readable payload bytes do one
    // masked little-endian u32 load per token — no per-byte
    // continuation branches (the point of the split layout) — and one
    // combined range check per group. `MAX_WORD` is an all-ones mask,
    // so the OR of four in-range words stays in range and a negative
    // word or a high bit in any lane trips the unsigned compare; the
    // exact-error loop below redoes a tripped group token by token.
    while i + 4 <= count && p + 16 <= payload.len() {
        let c = control[i / 4];
        let l0 = lane_len(c, 0);
        let l1 = lane_len(c, 1);
        let l2 = lane_len(c, 2);
        let l3 = lane_len(c, 3);
        let t0 = load_u32(payload, p) & TOKEN_MASK[l0 - 1];
        let t1 = load_u32(payload, p + l0) & TOKEN_MASK[l1 - 1];
        let t2 = load_u32(payload, p + l0 + l1) & TOKEN_MASK[l2 - 1];
        let t3 = load_u32(payload, p + l0 + l1 + l2) & TOKEN_MASK[l3 - 1];
        let w0 = prev + unzigzag(u64::from(t0) >> 1);
        let w1 = w0 + unzigzag(u64::from(t1) >> 1);
        let w2 = w1 + unzigzag(u64::from(t2) >> 1);
        let w3 = w2 + unzigzag(u64::from(t3) >> 1);
        if (w0 | w1 | w2 | w3) as u64 > MAX_WORD as u64 {
            break;
        }
        out.extend_from_slice(&[
            (w0 as u32) << 2 | (t0 & 1),
            (w1 as u32) << 2 | (t1 & 1),
            (w2 as u32) << 2 | (t2 & 1),
            (w3 as u32) << 2 | (t3 & 1),
        ]);
        prev = w3;
        p += l0 + l1 + l2 + l3;
        i += 4;
    }
    // Tail: byte-assembled loads with explicit bounds checks.
    while i < count {
        let len = lane_len(control[i / 4], i % 4);
        if p + len > payload.len() {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "split payload truncated",
            ));
        }
        let mut token = 0u32;
        for (b, &byte) in payload[p..p + len].iter().enumerate() {
            token |= u32::from(byte) << (8 * b);
        }
        prev = emit_token(out, prev, u64::from(token))?;
        p += len;
        i += 1;
    }
    if p != payload.len() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "{} trailing bytes after the last address",
                payload.len() - p
            ),
        ));
    }
    Ok(())
}

/// SSSE3 split kernel: one `pshufb` expands a group of four trimmed
/// tokens into four `u32` lanes, then zigzag, prefix sum, and range
/// check stay in-register. The running word (`prev`) is carried as a
/// broadcast vector — no per-group extract back to a scalar register —
/// and the range check is deferred: failures OR into a sticky mask and
/// the column is redecoded by the scalar kernel from the start, which
/// reproduces the exact error. The deferral is sound because the first
/// lane whose true word leaves [0, `MAX_WORD`] is always flagged: with
/// an in-range `prev`, every true lane value lies in (−2³¹, 2³¹ + 2³⁰),
/// and no value in that window maps into [0, 2³⁰) modulo 2³² except
/// the in-range values themselves.
///
/// # Safety
///
/// The caller must have verified SSSE3 is available on this CPU.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "ssse3")]
unsafe fn decode_split_ssse3(
    control: &[u8],
    payload: &[u8],
    count: usize,
    out: &mut Vec<u32>,
) -> io::Result<()> {
    use std::arch::x86_64::*;
    let start = out.len();
    out.reserve(count);
    let dst = out.as_mut_ptr().add(start);
    let one = _mm_set1_epi32(1);
    let mut seen = _mm_setzero_si128();
    let mut prevv = _mm_setzero_si128();
    let mut i = 0usize;
    let mut p = 0usize;
    while i + 4 <= count && p + 16 <= payload.len() {
        let c = control[i / 4] as usize;
        let shuf = _mm_loadu_si128(SPLIT_SHUFFLE[c].as_ptr() as *const __m128i);
        let raw = _mm_loadu_si128(payload.as_ptr().add(p) as *const __m128i);
        let tok = _mm_shuffle_epi8(raw, shuf);
        let store = _mm_and_si128(tok, one);
        let zz = _mm_srli_epi32::<1>(tok);
        // unzigzag: (zz >> 1) ^ -(zz & 1), per lane.
        let delta = _mm_xor_si128(
            _mm_srli_epi32::<1>(zz),
            _mm_sub_epi32(_mm_setzero_si128(), _mm_and_si128(zz, one)),
        );
        // In-register prefix sum turns deltas into running words.
        let sums = _mm_add_epi32(delta, _mm_slli_si128::<4>(delta));
        let sums = _mm_add_epi32(sums, _mm_slli_si128::<8>(sums));
        let words = _mm_add_epi32(prevv, sums);
        // Range check, deferred: an in-range word has bits 31:30 clear
        // (word ≤ 2³⁰ − 1) and an out-of-range or negative word sets at
        // least one of them, so OR-accumulating the raw lanes and
        // testing the top two bits after the loop catches every
        // violation at one op per step.
        seen = _mm_or_si128(seen, words);
        let packed = _mm_or_si128(_mm_slli_epi32::<2>(words), store);
        _mm_storeu_si128(dst.add(i) as *mut __m128i, packed);
        // Advance the carried word by the group's delta total — the
        // broadcast hangs off `sums`, keeping the loop-carried chain a
        // single add.
        prevv = _mm_add_epi32(prevv, _mm_shuffle_epi32::<0xff>(sums));
        p += SPLIT_GROUP_BYTES[c] as usize;
        i += 4;
    }
    let high = _mm_or_si128(seen, _mm_slli_epi32::<1>(seen));
    if _mm_movemask_ps(_mm_castsi128_ps(high)) != 0 {
        // SAFETY: `start` lanes were valid on entry; everything past
        // them is discarded before the scalar rerun repopulates `out`.
        out.set_len(start);
        return decode_split_scalar_from(control, payload, count, 0, 0, 0, out);
    }
    // SAFETY: `reserve(count)` guaranteed capacity and the loop stored
    // lanes `start..start + i` contiguously.
    out.set_len(start + i);
    let prev = i64::from(_mm_cvtsi128_si32(prevv));
    decode_split_scalar_from(control, payload, count, i, p, prev, out)
}

/// AVX2 split kernel: two control bytes (eight tokens) per step. The
/// two 16-byte payload loads land in one 256-bit register, the prefix
/// sums run lane-locally, and the low half's running total is carried
/// into the high half with one cross-lane permute. As in the SSSE3
/// kernel, the running word stays a broadcast vector across iterations
/// (one `vpermd` per step, no extract back to a scalar register) and
/// the range check is a deferred sticky mask resolved after the loop —
/// see [`decode_split_ssse3`] for why the deferral cannot miss the
/// first out-of-range lane.
///
/// # Safety
///
/// The caller must have verified AVX2 is available on this CPU.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn decode_split_avx2(
    control: &[u8],
    payload: &[u8],
    count: usize,
    out: &mut Vec<u32>,
) -> io::Result<()> {
    use std::arch::x86_64::*;
    let start = out.len();
    out.reserve(count);
    let dst = out.as_mut_ptr().add(start);
    let one = _mm256_set1_epi32(1);
    let splat3 = _mm256_set1_epi32(3);
    let splat7 = _mm256_set1_epi32(7);
    let mut seen = _mm256_setzero_si256();
    let mut prevv = _mm256_setzero_si256();
    let mut i = 0usize;
    let mut p = 0usize;
    // One eight-token step. The control-byte reads are in bounds: the
    // loop guards keep `i + 8 <= count`, so `i / 4 + 1` stays below
    // `count.div_ceil(4) == control.len()`. The payload loads are in
    // bounds under `p + 32 <= payload.len()`: the second 16-byte load
    // starts at most 16 bytes past the first.
    macro_rules! step8 {
        () => {{
            let c0 = *control.get_unchecked(i / 4) as usize;
            let c1 = *control.get_unchecked(i / 4 + 1) as usize;
            let g0 = SPLIT_GROUP_BYTES[c0] as usize;
            let lo = _mm_loadu_si128(payload.as_ptr().add(p) as *const __m128i);
            let hi = _mm_loadu_si128(payload.as_ptr().add(p + g0) as *const __m128i);
            let raw = _mm256_set_m128i(hi, lo);
            let shuf = _mm256_set_m128i(
                _mm_loadu_si128(SPLIT_SHUFFLE[c1].as_ptr() as *const __m128i),
                _mm_loadu_si128(SPLIT_SHUFFLE[c0].as_ptr() as *const __m128i),
            );
            let tok = _mm256_shuffle_epi8(raw, shuf);
            let store = _mm256_and_si256(tok, one);
            let zz = _mm256_srli_epi32::<1>(tok);
            let delta = _mm256_xor_si256(
                _mm256_srli_epi32::<1>(zz),
                _mm256_sub_epi32(_mm256_setzero_si256(), _mm256_and_si256(zz, one)),
            );
            // Lane-local prefix sums (si256 byte shifts stay inside
            // each 128-bit half)…
            let sums = _mm256_add_epi32(delta, _mm256_slli_si256::<4>(delta));
            let sums = _mm256_add_epi32(sums, _mm256_slli_si256::<8>(sums));
            // …then carry the low half's lane-3 running total into the
            // high-half lanes (the blend zeroes the low half).
            let carry = _mm256_blend_epi32::<0b1111_0000>(
                _mm256_setzero_si256(),
                _mm256_permutevar8x32_epi32(sums, splat3),
            );
            let sums = _mm256_add_epi32(sums, carry);
            let words = _mm256_add_epi32(prevv, sums);
            // Range check, deferred: an in-range word has bits 31:30
            // clear, so OR-accumulating the raw lanes and testing the
            // top two bits after the loop catches every violation at
            // one op per step.
            seen = _mm256_or_si256(seen, words);
            let packed = _mm256_or_si256(_mm256_slli_epi32::<2>(words), store);
            _mm256_storeu_si256(dst.add(i) as *mut __m256i, packed);
            // Advance the carried word by the step's delta total — the
            // broadcast hangs off `sums`, keeping the loop-carried
            // chain a single add.
            prevv = _mm256_add_epi32(prevv, _mm256_permutevar8x32_epi32(sums, splat7));
            p += g0 + SPLIT_GROUP_BYTES[c1] as usize;
            i += 8;
        }};
    }
    // Two steps per iteration keep more independent work in flight;
    // `p + 64` bounds both steps (each consumes at most 32 payload
    // bytes, so the second step's loads stay under `p + 64`).
    while i + 16 <= count && p + 64 <= payload.len() {
        step8!();
        step8!();
    }
    while i + 8 <= count && p + 32 <= payload.len() {
        step8!();
    }
    let high = _mm256_or_si256(seen, _mm256_slli_epi32::<1>(seen));
    if _mm256_movemask_ps(_mm256_castsi256_ps(high)) != 0 {
        // SAFETY: `start` lanes were valid on entry; everything past
        // them is discarded before the scalar rerun repopulates `out`.
        out.set_len(start);
        return decode_split_scalar_from(control, payload, count, 0, 0, 0, out);
    }
    // SAFETY: `reserve(count)` guaranteed capacity and the loop stored
    // lanes `start..start + i` contiguously.
    out.set_len(start + i);
    let prev = i64::from(_mm256_cvtsi256_si32(prevv));
    decode_split_scalar_from(control, payload, count, i, p, prev, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_round_trips_and_orders_by_magnitude() {
        for v in [0i64, -1, 1, -2, 2, i64::from(i32::MAX), i64::from(i32::MIN)] {
            assert_eq!(unzigzag(zigzag(v)), v, "{v}");
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn varint_round_trips_boundary_values() {
        for v in [
            0u64,
            1,
            0x7f,
            0x80,
            0x3fff,
            0x4000,
            u64::from(u32::MAX),
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(take_varint(&buf, &mut pos).unwrap(), v, "{v:#x}");
            assert_eq!(pos, buf.len(), "{v:#x}");
        }
    }

    #[test]
    fn truncated_varint_is_eof() {
        let mut buf = Vec::new();
        put_varint(&mut buf, u64::from(u32::MAX));
        buf.pop();
        let mut pos = 0;
        let err = take_varint(&buf, &mut pos).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn overlong_varint_is_invalid() {
        let buf = [0x80u8; 11];
        let mut pos = 0;
        let err = take_varint(&buf, &mut pos).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[cfg(not(feature = "seeded-bugs"))]
    #[test]
    fn addr_chunk_round_trips_including_max_delta() {
        // Alternating extremes force the worst-case 5-byte tokens.
        let addrs = vec![0, u32::MAX & !3 | 1, 1, u32::MAX & !3, 4, 8, 8 | 1, 0x1000];
        let mut bytes = Vec::new();
        encode_addr_chunk(&addrs, &mut bytes);
        assert!(bytes.len() <= addrs.len() * MAX_VARINT_BYTES_PER_ADDR);
        assert_eq!(decode_addr_chunk(&bytes, addrs.len()).unwrap(), addrs);
    }

    #[cfg(not(feature = "seeded-bugs"))]
    #[test]
    fn local_streams_compress_well() {
        let addrs: Vec<u32> = (0..1024u32).map(|i| (i % 64) * 4).collect();
        let mut bytes = Vec::new();
        encode_addr_chunk(&addrs, &mut bytes);
        // Small deltas: ~1–2 bytes per address vs 4 raw.
        assert!(bytes.len() * 2 < addrs.len() * 4, "{} bytes", bytes.len());
        assert_eq!(decode_addr_chunk(&bytes, addrs.len()).unwrap(), addrs);
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = Vec::new();
        encode_addr_chunk(&[4, 8], &mut bytes);
        bytes.push(0);
        let err = decode_addr_chunk(&bytes, 2).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_chunk_is_rejected() {
        let mut bytes = Vec::new();
        encode_addr_chunk(&[4, 8, 12], &mut bytes);
        bytes.pop();
        assert!(decode_addr_chunk(&bytes, 3).is_err());
    }

    /// Columns that exercise every token length, group-boundary
    /// stragglers, and the empty case.
    #[cfg(not(feature = "seeded-bugs"))]
    fn split_cases() -> Vec<Vec<u32>> {
        let mut cases = vec![
            vec![],
            vec![4],
            vec![0, u32::MAX & !3 | 1, 1, u32::MAX & !3, 4, 8, 8 | 1, 0x1000],
            (0..1024u32).map(|i| (i % 64) * 4).collect(),
        ];
        // Deterministically mixed token lengths across odd counts.
        let mut x = 0x2545_f491u32;
        for count in [3usize, 5, 63, 64, 65, 257] {
            let mut addrs = Vec::with_capacity(count);
            for _ in 0..count {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                // Vary delta magnitude: mostly small, sometimes huge.
                let addr = match x % 4 {
                    0 => (x % 251) * 4,
                    1 => (x % 65_521) * 4 | 1,
                    _ => x & !2,
                };
                addrs.push(addr);
            }
            cases.push(addrs);
        }
        cases
    }

    #[cfg(not(feature = "seeded-bugs"))]
    #[test]
    fn split_round_trips_at_every_level() {
        for addrs in split_cases() {
            let mut bytes = Vec::new();
            encode_addr_chunk_split(&addrs, &mut bytes);
            let control = addrs.len().div_ceil(4);
            assert!(bytes.len() >= control + addrs.len().min(1));
            assert!(bytes.len() <= control + addrs.len() * MAX_SPLIT_BYTES_PER_ADDR);
            for level in SimdLevel::available() {
                let mut out = Vec::new();
                decode_addr_chunk_split_into_with(&bytes, addrs.len(), level, &mut out)
                    .unwrap_or_else(|e| panic!("{level:?} on {} addrs: {e}", addrs.len()));
                assert_eq!(out, addrs, "{level:?} on {} addrs", addrs.len());
            }
        }
    }

    #[cfg(not(feature = "seeded-bugs"))]
    #[test]
    fn split_and_varint_codecs_agree() {
        for addrs in split_cases() {
            let mut leb = Vec::new();
            encode_addr_chunk(&addrs, &mut leb);
            let mut split = Vec::new();
            encode_addr_chunk_split(&addrs, &mut split);
            assert_eq!(
                decode_addr_chunk(&leb, addrs.len()).unwrap(),
                decode_addr_chunk_split(&split, addrs.len()).unwrap(),
            );
        }
    }

    #[test]
    fn split_truncated_control_is_eof() {
        let err = decode_addr_chunk_split(&[], 1).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn split_truncated_payload_is_eof() {
        let mut bytes = Vec::new();
        encode_addr_chunk_split(&[4, 8, 0x4000_0000, 12, 16], &mut bytes);
        bytes.pop();
        let err = decode_addr_chunk_split(&bytes, 5).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[cfg(not(feature = "seeded-bugs"))]
    #[test]
    fn split_trailing_payload_is_rejected() {
        let mut bytes = Vec::new();
        encode_addr_chunk_split(&[4, 8], &mut bytes);
        bytes.push(0);
        let err = decode_addr_chunk_split(&bytes, 2).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn split_non_canonical_padding_is_rejected() {
        let mut bytes = Vec::new();
        encode_addr_chunk_split(&[4, 8, 12], &mut bytes);
        // Three addresses: lane 3 of the single control byte is unused
        // padding and must be zero.
        bytes[0] |= 0b11 << 6;
        let err = decode_addr_chunk_split(&bytes, 3).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn split_out_of_range_delta_errors_identically_at_every_level() {
        // Hand-built column: four all-short groups walk words 0..15,
        // then a fifth group of 4-byte max-positive deltas overflows
        // the word space on its first lane. Enough leading groups that
        // both vector kernels enter their wide loops first.
        let token = (zigzag(MAX_WORD) << 1) as u32;
        let mut bytes = vec![0u8, 0, 0, 0, 0xff];
        bytes.push(0); // delta 0
        bytes.extend_from_slice(&[4u8; 15]); // delta +1 each
        for _ in 0..4 {
            bytes.extend_from_slice(&token.to_le_bytes());
        }
        let errs: Vec<String> = SimdLevel::available()
            .into_iter()
            .map(|level| {
                let mut out = Vec::new();
                let err = decode_addr_chunk_split_into_with(&bytes, 20, level, &mut out)
                    .expect_err("overflowing delta must fail");
                assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{level:?}");
                assert!(out.is_empty(), "{level:?} left partial output");
                err.to_string()
            })
            .collect();
        for pair in errs.windows(2) {
            assert_eq!(pair[0], pair[1], "levels disagree on the error");
        }
    }

    #[cfg(not(feature = "seeded-bugs"))]
    #[test]
    fn split_column_overhead_is_bounded_on_local_streams() {
        let addrs: Vec<u32> = (0..8192u32).map(|i| (i % 64) * 4).collect();
        let mut leb = Vec::new();
        encode_addr_chunk(&addrs, &mut leb);
        let mut split = Vec::new();
        encode_addr_chunk_split(&addrs, &mut split);
        // Small deltas: 1 payload byte + 1/4 control byte per address
        // vs 1 full LEB byte — the split form trades ≤ 25% growth for
        // branch-free decode, and must never exceed that bound.
        assert!(split.len() <= leb.len() + addrs.len().div_ceil(4));
    }
}
