//! Delta + varint compression of the packed address column.
//!
//! The v2.1 trace format (`FVLTRC21`, see [`crate::trace_io`]) stores
//! each chunk's address column as zigzag-encoded word deltas in LEB128
//! varints instead of raw `u32`s. Access streams are overwhelmingly
//! local — consecutive addresses usually sit a few words apart — so
//! most deltas fit one or two bytes and the on-disk column shrinks to
//! well under half its resident size.
//!
//! Token layout, per access (addresses are word aligned, so bits 0–1
//! of the packed form are free — bit 0 is [`crate::STORE_BIT`]):
//!
//! ```text
//! word  = packed_addr >> 2            (the word index)
//! delta = word - previous_word        (signed; previous starts at 0)
//! token = zigzag(delta) << 1 | store  (store = packed_addr & 1)
//! ```
//!
//! and the token is LEB128-encoded (7 value bits per byte, high bit =
//! continuation). The delta chain restarts at zero for every chunk, so
//! chunks decode independently — the property the memory-mapped lazy
//! reader ([`crate::MappedTrace`]) relies on.

use std::io;

/// Worst-case encoded bytes per address: a 32-bit word delta zigzags
/// into ≤ 31 significant bits, plus the store bit, is ≤ 32 bits — five
/// LEB128 bytes. Readers use this to bound hostile `addr_bytes` fields
/// before allocating.
pub const MAX_VARINT_BYTES_PER_ADDR: usize = 5;

/// Largest word index a packed `u32` address can carry (the address's
/// two low bits hold the store bit and the alignment pad).
const MAX_WORD: i64 = (u32::MAX >> 2) as i64;

/// Maps a signed delta onto the unsigned varint domain: small
/// magnitudes of either sign become small codes (0, -1, 1, -2, …).
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Appends `v` to `out` as an LEB128 varint (7 bits per byte,
/// little-endian groups, high bit set on every byte but the last).
#[inline]
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decodes one LEB128 varint from `bytes` starting at `*pos`,
/// advancing `*pos` past it.
///
/// # Errors
///
/// Fails with `UnexpectedEof` when the slice ends mid-varint and
/// `InvalidData` when the encoding runs past 10 bytes (more than a
/// `u64` can hold).
#[inline]
pub fn take_varint(bytes: &[u8], pos: &mut usize) -> io::Result<u64> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let Some(&byte) = bytes.get(*pos) else {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "varint truncated",
            ));
        };
        *pos += 1;
        if shift >= 64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "varint longer than 10 bytes",
            ));
        }
        value |= u64::from(byte & 0x7f) << shift;
        // `seeded-bugs` is a TEST-ONLY mutation used by the `fvl-check`
        // conformance harness: the continuation test is off by one, so
        // a varint whose final byte is exactly 0x7f is misread as
        // continuing into the next byte.
        #[cfg(feature = "seeded-bugs")]
        let done = byte < 0x7f;
        #[cfg(not(feature = "seeded-bugs"))]
        let done = byte < 0x80;
        if done {
            return Ok(value);
        }
        shift += 7;
    }
}

/// Encodes one chunk's packed address column (raw `u32`s with
/// [`crate::STORE_BIT`] folded in) as delta + varint tokens, appending
/// to `out`. The delta chain starts at word 0.
pub fn encode_addr_chunk(addrs: &[u32], out: &mut Vec<u8>) {
    let mut prev: i64 = 0;
    for &raw in addrs {
        let store = u64::from(raw & 1);
        let word = i64::from(raw >> 2);
        let token = zigzag(word - prev) << 1 | store;
        put_varint(out, token);
        prev = word;
    }
}

/// Decodes exactly `count` addresses from an [`encode_addr_chunk`]
/// payload, requiring the payload to be fully consumed.
///
/// # Errors
///
/// Fails with `UnexpectedEof` on a truncated payload and `InvalidData`
/// when a delta walks outside the 30-bit word space, a varint
/// overflows, or bytes are left over after the last address.
pub fn decode_addr_chunk(bytes: &[u8], count: usize) -> io::Result<Vec<u32>> {
    let mut addrs = Vec::new();
    decode_addr_chunk_into(bytes, count, &mut addrs)?;
    Ok(addrs)
}

/// [`decode_addr_chunk`] appending into a caller-owned column, so a
/// multi-chunk reader decodes every chunk straight into the final
/// buffer instead of staging each one through a fresh allocation.
///
/// # Errors
///
/// Same conditions as [`decode_addr_chunk`].
pub fn decode_addr_chunk_into(bytes: &[u8], count: usize, out: &mut Vec<u32>) -> io::Result<()> {
    out.reserve(count.min(1 << 24));
    let mut pos = 0usize;
    let mut prev: i64 = 0;
    // A byte-at-a-time loop, measured fastest here: windowed u64 loads
    // with continuation-bitmask boundary finding were tried and lost to
    // this loop on real traces (the extra shift/mask machinery costs
    // more than the serial byte chain saves on a narrow core), so
    // [`take_varint`] stays the single decode authority.
    for _ in 0..count {
        let token = take_varint(bytes, &mut pos)?;
        prev = emit_token(out, prev, token)?;
    }
    if pos != bytes.len() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "{} trailing bytes after the last address",
                bytes.len() - pos
            ),
        ));
    }
    Ok(())
}

/// Applies one decoded token to the delta chain: bounds-checks the
/// reconstructed word, pushes the packed address, returns the new
/// `prev`.
#[inline]
fn emit_token(out: &mut Vec<u32>, prev: i64, token: u64) -> io::Result<i64> {
    let word = prev + unzigzag(token >> 1);
    // One unsigned compare covers both bounds: a negative word wraps
    // to a huge u64.
    if word as u64 > MAX_WORD as u64 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("address delta leaves the 32-bit word space (word {word})"),
        ));
    }
    out.push((word as u32) << 2 | (token as u32 & 1));
    Ok(word)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_round_trips_and_orders_by_magnitude() {
        for v in [0i64, -1, 1, -2, 2, i64::from(i32::MAX), i64::from(i32::MIN)] {
            assert_eq!(unzigzag(zigzag(v)), v, "{v}");
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn varint_round_trips_boundary_values() {
        for v in [
            0u64,
            1,
            0x7f,
            0x80,
            0x3fff,
            0x4000,
            u64::from(u32::MAX),
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(take_varint(&buf, &mut pos).unwrap(), v, "{v:#x}");
            assert_eq!(pos, buf.len(), "{v:#x}");
        }
    }

    #[test]
    fn truncated_varint_is_eof() {
        let mut buf = Vec::new();
        put_varint(&mut buf, u64::from(u32::MAX));
        buf.pop();
        let mut pos = 0;
        let err = take_varint(&buf, &mut pos).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn overlong_varint_is_invalid() {
        let buf = [0x80u8; 11];
        let mut pos = 0;
        let err = take_varint(&buf, &mut pos).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[cfg(not(feature = "seeded-bugs"))]
    #[test]
    fn addr_chunk_round_trips_including_max_delta() {
        // Alternating extremes force the worst-case 5-byte tokens.
        let addrs = vec![0, u32::MAX & !3 | 1, 1, u32::MAX & !3, 4, 8, 8 | 1, 0x1000];
        let mut bytes = Vec::new();
        encode_addr_chunk(&addrs, &mut bytes);
        assert!(bytes.len() <= addrs.len() * MAX_VARINT_BYTES_PER_ADDR);
        assert_eq!(decode_addr_chunk(&bytes, addrs.len()).unwrap(), addrs);
    }

    #[cfg(not(feature = "seeded-bugs"))]
    #[test]
    fn local_streams_compress_well() {
        let addrs: Vec<u32> = (0..1024u32).map(|i| (i % 64) * 4).collect();
        let mut bytes = Vec::new();
        encode_addr_chunk(&addrs, &mut bytes);
        // Small deltas: ~1–2 bytes per address vs 4 raw.
        assert!(bytes.len() * 2 < addrs.len() * 4, "{} bytes", bytes.len());
        assert_eq!(decode_addr_chunk(&bytes, addrs.len()).unwrap(), addrs);
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = Vec::new();
        encode_addr_chunk(&[4, 8], &mut bytes);
        bytes.push(0);
        let err = decode_addr_chunk(&bytes, 2).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_chunk_is_rejected() {
        let mut bytes = Vec::new();
        encode_addr_chunk(&[4, 8, 12], &mut bytes);
        bytes.pop();
        assert!(decode_addr_chunk(&bytes, 3).is_err());
    }
}
