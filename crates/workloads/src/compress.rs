//! `CompressLike` — an LZW compressor/decompressor, standing in for
//! 129.compress.
//!
//! This is one of the paper's two *negative controls*: compress shows
//! almost no frequent value locality (3.2% constant addresses, tiny
//! top-10 coverage) because its dictionary and I/O buffers are filled
//! with ever-growing, mostly-distinct codes that are overwritten on
//! every dictionary reset. The implementation is a real LZW codec whose
//! dictionary, input, and output buffers live in traced memory, and it
//! verifies its own round trip.

use crate::{InputSize, Rng, Workload};
use fvl_mem::{Addr, Bus, BusExt};

const CLEAR_CODE: u32 = 256;
const FIRST_CODE: u32 = 257;
const MAX_CODES: u32 = 4096;

/// Dictionary entry: open-addressed table keyed by (prefix, byte).
/// Three parallel arrays in traced memory: key, code, and the reverse
/// arrays prefix/suffix for decompression.
struct Lzw<'b> {
    bus: &'b mut dyn Bus,
    /// Hash table: key array (prefix<<9|byte|used-bit) and code array.
    hash_keys: Addr,
    hash_codes: Addr,
    hash_size: u32,
    /// Reverse mapping for the decoder.
    prefixes: Addr,
    suffixes: Addr,
    next_code: u32,
    pub resets: u32,
}

impl<'b> Lzw<'b> {
    fn new(bus: &'b mut dyn Bus) -> Self {
        let hash_size = 5003; // prime, ~80% max load: long distinct-key probe chains
        let hash_keys = bus.global(hash_size);
        let hash_codes = bus.global(hash_size);
        let prefixes = bus.global(MAX_CODES);
        let suffixes = bus.global(MAX_CODES);
        let mut lzw = Lzw {
            bus,
            hash_keys,
            hash_codes,
            hash_size,
            prefixes,
            suffixes,
            next_code: FIRST_CODE,
            resets: 0,
        };
        lzw.clear();
        lzw
    }

    fn clear(&mut self) {
        for i in 0..self.hash_size {
            self.bus.store_idx(self.hash_keys, i, u32::MAX);
        }
        self.next_code = FIRST_CODE;
    }

    fn key_of(prefix: u32, byte: u8) -> u32 {
        (prefix << 8) | byte as u32
    }

    fn hash_slot(&self, key: u32) -> u32 {
        key.wrapping_mul(0x9e37_79b1) % self.hash_size
    }

    fn lookup(&mut self, prefix: u32, byte: u8) -> Option<u32> {
        let key = Self::key_of(prefix, byte);
        let mut slot = self.hash_slot(key);
        loop {
            let k = self.bus.load_idx(self.hash_keys, slot);
            if k == u32::MAX {
                return None;
            }
            if k == key {
                return Some(self.bus.load_idx(self.hash_codes, slot));
            }
            slot = (slot + 1) % self.hash_size;
        }
    }

    fn add(&mut self, prefix: u32, byte: u8) {
        let code = self.next_code;
        self.next_code += 1;
        let key = Self::key_of(prefix, byte);
        let mut slot = self.hash_slot(key);
        while self.bus.load_idx(self.hash_keys, slot) != u32::MAX {
            slot = (slot + 1) % self.hash_size;
        }
        self.bus.store_idx(self.hash_keys, slot, key);
        self.bus.store_idx(self.hash_codes, slot, code);
        self.bus.store_idx(self.prefixes, code, prefix);
        self.bus.store_idx(self.suffixes, code, byte as u32);
    }

    /// Compresses `len` bytes (one per word) at `input`; emits codes
    /// (one per word) at `output`. Returns the number of codes.
    fn compress(&mut self, input: Addr, len: u32, output: Addr) -> u32 {
        let mut out = 0u32;
        let emit = |bus: &mut dyn Bus, code: u32, out: &mut u32| {
            bus.store_idx(output, *out, code);
            *out += 1;
        };
        let first = self.bus.load_idx(input, 0) as u8;
        let mut prefix = first as u32;
        for i in 1..len {
            let byte = self.bus.load_idx(input, i) as u8;
            match self.lookup(prefix, byte) {
                Some(code) => prefix = code,
                None => {
                    emit(self.bus, prefix, &mut out);
                    if self.next_code < MAX_CODES {
                        self.add(prefix, byte);
                    } else {
                        emit(self.bus, CLEAR_CODE, &mut out);
                        self.clear();
                        self.resets += 1;
                    }
                    prefix = byte as u32;
                }
            }
        }
        emit(self.bus, prefix, &mut out);
        out
    }

    /// Expands `code` into bytes (reverse chain), writing them at
    /// `buf`; returns the length.
    fn expand(&mut self, mut code: u32, buf: &mut Vec<u8>) {
        buf.clear();
        while code >= FIRST_CODE {
            let suffix = self.bus.load_idx(self.suffixes, code) as u8;
            buf.push(suffix);
            code = self.bus.load_idx(self.prefixes, code);
        }
        buf.push(code as u8);
        buf.reverse();
    }

    /// Decompresses `ncodes` codes at `input` into bytes (one per word)
    /// at `output`. Returns byte count. The dictionary must be freshly
    /// cleared (decoder rebuilds it in lockstep).
    fn decompress(&mut self, input: Addr, ncodes: u32, output: Addr) -> u32 {
        self.clear();
        let mut out = 0u32;
        let mut prev: Option<u32> = None;
        let mut prev_first: u8 = 0;
        let mut buf = Vec::new();
        for i in 0..ncodes {
            let code = self.bus.load_idx(input, i);
            if code == CLEAR_CODE {
                self.clear();
                prev = None;
                continue;
            }
            if code < self.next_code {
                self.expand(code, &mut buf);
            } else {
                // The KwKwK case: code == next_code.
                debug_assert_eq!(code, self.next_code, "corrupt stream");
                let p = prev.expect("KwKwK cannot be first");
                self.expand(p, &mut buf);
                buf.push(prev_first);
            }
            let first = buf[0];
            for &b in &buf {
                self.bus.store_idx(output, out, b as u32);
                out += 1;
            }
            if let Some(p) = prev {
                if self.next_code < MAX_CODES {
                    // Decoder adds (prev, first) — mirrors the encoder.
                    let codeno = self.next_code;
                    self.next_code += 1;
                    self.bus.store_idx(self.prefixes, codeno, p);
                    self.bus.store_idx(self.suffixes, codeno, first as u32);
                }
            }
            prev = Some(code);
            prev_first = first;
        }
        out
    }
}

/// The 129.compress stand-in: generate text, compress, decompress,
/// verify.
#[derive(Debug)]
pub struct CompressLike {
    input: InputSize,
    seed: u64,
    /// (input bytes, codes emitted, dictionary resets) after the run.
    pub last_result: Option<(u32, u32, u32)>,
}

impl CompressLike {
    /// Creates the workload.
    pub fn new(input: InputSize, seed: u64) -> Self {
        CompressLike {
            input,
            seed,
            last_result: None,
        }
    }
}

impl Workload for CompressLike {
    fn name(&self) -> &'static str {
        "compress"
    }

    fn mirrors(&self) -> &'static str {
        "129.compress"
    }

    fn run(&mut self, bus: &mut dyn Bus) {
        // compress processes its input as a stream of chunks through
        // small reused buffers — which is also why almost none of its
        // addresses keep a constant value (the paper's Table 4: 3.2%).
        let (chunk_len, chunks) = match self.input {
            InputSize::Test => (15_000u32, 4u32),
            InputSize::Train => (25_000, 8),
            InputSize::Ref => (30_000, 14),
        };
        let mut rng = Rng::new(self.seed ^ 0x515a);
        let input = bus.alloc(chunk_len);
        let output = bus.alloc(chunk_len + 64);
        let check = bus.alloc(chunk_len + 64);
        let mut lzw = Lzw::new(bus);
        let mut total_codes = 0u32;
        let mut resets = 0u32;
        for _chunk in 0..chunks {
            // Fresh chunk data overwrites the window buffer: mixed
            // text-ish bytes and noise, one byte per word.
            for i in 0..chunk_len {
                let b = if rng.chance(0.35) {
                    b' ' + (rng.below(96)) as u8 // wide-alphabet text region
                } else {
                    rng.below(256) as u8 // noise
                };
                lzw.bus.store_idx(input, i, b as u32);
            }
            lzw.clear();
            let ncodes = lzw.compress(input, chunk_len, output);
            let nbytes = lzw.decompress(output, ncodes, check);
            assert_eq!(nbytes, chunk_len, "round trip length");
            total_codes += ncodes;
            resets += lzw.resets;
            // Spot verification through traced loads.
            for i in (0..chunk_len).step_by(97) {
                let a = lzw.bus.load_idx(input, i);
                let b = lzw.bus.load_idx(check, i);
                assert_eq!(a, b, "round trip mismatch at chunk offset {i}");
            }
        }
        self.last_result = Some((chunk_len * chunks, total_codes, resets));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fvl_mem::{CountingSink, NullSink, TracedMemory};

    fn round_trip(data: &[u8]) -> (u32, Vec<u8>) {
        let mut sink = NullSink;
        let mut mem = TracedMemory::new(&mut sink);
        let input = mem.alloc(data.len() as u32);
        for (i, &b) in data.iter().enumerate() {
            mem.store_idx(input, i as u32, b as u32);
        }
        let output = mem.alloc(data.len() as u32 + 64);
        let check = mem.alloc(data.len() as u32 + 64);
        let mut lzw = Lzw::new(&mut mem);
        let ncodes = lzw.compress(input, data.len() as u32, output);
        let nbytes = lzw.decompress(output, ncodes, check);
        let mut out = Vec::new();
        for i in 0..nbytes {
            out.push(lzw.bus.load_idx(check, i) as u8);
        }
        (ncodes, out)
    }

    #[test]
    fn round_trips_simple_text() {
        let data = b"tobeornottobeortobeornot";
        let (ncodes, out) = round_trip(data);
        assert_eq!(out, data);
        assert!(ncodes < data.len() as u32, "repetition compresses");
    }

    #[test]
    fn round_trips_kwkwk_case() {
        // "aaaa..." triggers the code==next_code decoder path.
        let data = vec![b'a'; 50];
        let (ncodes, out) = round_trip(&data);
        assert_eq!(out, data);
        assert!(ncodes <= 10);
    }

    #[test]
    fn round_trips_binary_noise() {
        let mut rng = Rng::new(77);
        let data: Vec<u8> = (0..2000).map(|_| rng.below(256) as u8).collect();
        let (ncodes, out) = round_trip(&data);
        assert_eq!(out, data);
        assert!(ncodes > 1000, "noise barely compresses");
    }

    #[test]
    fn dictionary_reset_path_round_trips() {
        // Long mixed input forces MAX_CODES and a CLEAR_CODE reset.
        let mut rng = Rng::new(5);
        let data: Vec<u8> = (0..40_000)
            .map(|_| {
                if rng.chance(0.5) {
                    b'x'
                } else {
                    rng.below(256) as u8
                }
            })
            .collect();
        let mut sink = NullSink;
        let mut mem = TracedMemory::new(&mut sink);
        let input = mem.alloc(data.len() as u32);
        for (i, &b) in data.iter().enumerate() {
            mem.store_idx(input, i as u32, b as u32);
        }
        let output = mem.alloc(data.len() as u32 + 64);
        let check = mem.alloc(data.len() as u32 + 64);
        let mut lzw = Lzw::new(&mut mem);
        let ncodes = lzw.compress(input, data.len() as u32, output);
        assert!(lzw.resets > 0, "dictionary reset exercised");
        let nbytes = lzw.decompress(output, ncodes, check);
        assert_eq!(nbytes, data.len() as u32);
        for (i, &b) in data.iter().enumerate() {
            assert_eq!(lzw.bus.load_idx(check, i as u32), b as u32, "byte {i}");
        }
    }

    #[test]
    fn full_workload_verifies_itself() {
        let mut sink = CountingSink::default();
        let mut w = CompressLike::new(InputSize::Test, 1);
        {
            let mut mem = TracedMemory::new(&mut sink);
            w.run(&mut mem);
            mem.finish();
        }
        let (len, codes, _resets) = w.last_result.unwrap();
        assert_eq!(len, 60_000, "4 chunks of 15000 bytes");
        assert!(codes > 0 && codes < 2 * len);
        assert!(sink.accesses() > 200_000);
    }
}
