//! `PerlLike` — a text-processing interpreter kernel, standing in for
//! 134.perl.
//!
//! The paper's Table 1 shows perl's frequent values are dominated by
//! space-padded ASCII words (`0x20207878`, `0x78782078`, ...) and nulls:
//! perl scripts spend their time tokenising text and banging on hash
//! tables. This workload does exactly that — text lives in simulated
//! memory as packed bytes, words are interned into a chained hash table
//! whose bucket array is mostly null, and a report pass rebuilds padded
//! strings — so the same value classes emerge.

use crate::{InputSize, Rng, Workload};
use fvl_mem::{Addr, Bus, BusExt};

/// Hash node layout (words): [hash, count, next, len, text[4]] — text is
/// up to 16 chars, space padded, big-endian packed.
const NODE_WORDS: u32 = 8;
const MAX_WORD_LEN: usize = 16;

/// A small Markov-ish text generator so the "input file" has a realistic
/// Zipfy word distribution.
fn generate_text(rng: &mut Rng, words: usize) -> String {
    const COMMON: &[&str] = &[
        "the", "of", "and", "a", "to", "in", "is", "you", "that", "it", "he", "was", "for", "on",
        "are", "as", "with", "his", "they", "at",
    ];
    const RARE: &[&str] = &[
        "xylophone",
        "quixotic",
        "zephyr",
        "labyrinth",
        "ephemeral",
        "paradox",
        "quantum",
        "nebula",
        "cascade",
        "harbinger",
        "monolith",
        "citadel",
        "aurora",
        "tempest",
    ];
    let mut out = String::new();
    for i in 0..words {
        if i > 0 {
            out.push(if rng.chance(0.08) { '\n' } else { ' ' });
        }
        if rng.chance(0.72) {
            out.push_str(COMMON[rng.below(COMMON.len() as u32) as usize]);
        } else if rng.chance(0.5) {
            out.push_str(RARE[rng.below(RARE.len() as u32) as usize]);
        } else {
            // An identifier from a bounded vocabulary (program
            // identifiers recur; they are not random strings).
            let id = rng.below(400);
            out.push((b'a' + (id % 26) as u8) as char);
            out.push((b'a' + (id / 26 % 26) as u8) as char);
            out.push_str("var");
            out.push((b'0' + (id / 676 % 10) as u8) as char);
        }
    }
    out
}

struct HashTable<'b> {
    bus: &'b mut dyn Bus,
    buckets: Addr,
    bucket_count: u32,
    entries: u32,
    /// Probe statistics (chain walks), a la perl's internal counters.
    probes: u64,
}

impl<'b> HashTable<'b> {
    fn new(bus: &'b mut dyn Bus, bucket_count: u32) -> Self {
        let buckets = bus.global(bucket_count);
        for i in 0..bucket_count {
            bus.store_idx(buckets, i, 0); // null — the frequent value
        }
        HashTable {
            bus,
            buckets,
            bucket_count,
            entries: 0,
            probes: 0,
        }
    }

    fn hash(word: &[u8]) -> u32 {
        // Perl's classic "times 33" hash.
        let mut h: u32 = 5381;
        for &b in word {
            h = h.wrapping_mul(33) ^ b as u32;
        }
        h
    }

    /// Looks `word` up; returns the node address if present.
    fn find(&mut self, word: &[u8]) -> Option<Addr> {
        let h = Self::hash(word);
        let mut node = self.bus.load_idx(self.buckets, h % self.bucket_count);
        let mut probe_text = [0u32; MAX_WORD_LEN / 4];
        pack(word, &mut probe_text);
        while node != 0 {
            self.probes += 1;
            let nh = self.bus.load_idx(node, 0);
            if nh == h {
                let len = self.bus.load_idx(node, 3);
                if len == word.len() as u32 {
                    let mut equal = true;
                    for (i, &pw) in probe_text.iter().enumerate() {
                        if self.bus.load_idx(node, 4 + i as u32) != pw {
                            equal = false;
                            break;
                        }
                    }
                    if equal {
                        return Some(node);
                    }
                }
            }
            node = self.bus.load_idx(node, 2);
        }
        None
    }

    /// Increments `word`'s count, inserting a node on first sight.
    fn bump(&mut self, word: &[u8]) {
        if let Some(node) = self.find(word) {
            let c = self.bus.load_idx(node, 1);
            self.bus.store_idx(node, 1, c + 1);
            return;
        }
        let h = Self::hash(word);
        let slot = h % self.bucket_count;
        let head = self.bus.load_idx(self.buckets, slot);
        let node = self.bus.alloc(NODE_WORDS);
        self.bus.store_idx(node, 0, h);
        self.bus.store_idx(node, 1, 1);
        self.bus.store_idx(node, 2, head);
        self.bus.store_idx(node, 3, word.len() as u32);
        let mut text = [0u32; MAX_WORD_LEN / 4];
        pack(word, &mut text);
        for (i, &w) in text.iter().enumerate() {
            self.bus.store_idx(node, 4 + i as u32, w);
        }
        self.bus.store_idx(self.buckets, slot, node);
        self.entries += 1;
    }

    /// Walks every chain, returning `(count, node)` pairs.
    fn drain_entries(&mut self) -> Vec<(u32, Addr)> {
        let mut out = Vec::new();
        for slot in 0..self.bucket_count {
            let mut node = self.bus.load_idx(self.buckets, slot);
            while node != 0 {
                let count = self.bus.load_idx(node, 1);
                out.push((count, node));
                node = self.bus.load_idx(node, 2);
            }
        }
        out
    }
}

/// Packs up to 16 bytes, space-padded, big-endian — perl's string
/// buffers as the paper sees them (`0x78202020` = `"x   "`).
fn pack(word: &[u8], out: &mut [u32; MAX_WORD_LEN / 4]) {
    for (w, slot) in out.iter_mut().enumerate() {
        let mut v = 0u32;
        for b in 0..4 {
            let i = w * 4 + b;
            let byte = word.get(i).copied().unwrap_or(b' ');
            v = (v << 8) | byte as u32;
        }
        *slot = v;
    }
}

/// The 134.perl stand-in: word-frequency counting plus report
/// generation over generated text.
#[derive(Debug)]
pub struct PerlLike {
    input: InputSize,
    seed: u64,
    /// (distinct words, total words, top count) after the run.
    pub last_result: Option<(u32, u32, u32)>,
}

impl PerlLike {
    /// Creates the workload.
    pub fn new(input: InputSize, seed: u64) -> Self {
        PerlLike {
            input,
            seed,
            last_result: None,
        }
    }
}

impl Workload for PerlLike {
    fn name(&self) -> &'static str {
        "perl"
    }

    fn mirrors(&self) -> &'static str {
        "134.perl"
    }

    fn run(&mut self, bus: &mut dyn Bus) {
        let (text_words, buckets, scans, arena_words) = match self.input {
            InputSize::Test => (6_000usize, 1_024u32, 10u32, 24_576u32),
            InputSize::Train => (25_000, 2_048, 16, 98_304),
            InputSize::Ref => (55_000, 4_096, 22, 262_144),
        };
        let mut rng = Rng::new(self.seed.wrapping_mul(0x9e37_79b9) | 1);
        let text = generate_text(&mut rng, text_words);
        let bytes = text.as_bytes();

        // The "input file": packed into simulated memory.
        let file_words = (bytes.len() as u32).div_ceil(4);
        let file = bus.global(file_words);
        bus.store_bytes(file, bytes, b'\n');

        // A big, mostly-null arena standing in for perl's op-tree and
        // pad arenas: zeroed up front (calloc) and then sparsely used.
        let arena = bus.global(arena_words);
        bus.fill(arena, arena_words, 0);

        let mut table = HashTable::new(bus, buckets);
        let mut total_words = 0u32;
        {
            // Tokenise by *reading the file back from simulated memory*.
            let mut word = Vec::with_capacity(MAX_WORD_LEN);
            let flush = |table: &mut HashTable<'_>, word: &mut Vec<u8>, total: &mut u32| {
                if !word.is_empty() {
                    word.truncate(MAX_WORD_LEN);
                    table.bump(word);
                    *total += 1;
                    if (*total).is_multiple_of(128) {
                        // Occasionally touch the op arena.
                        let slot = (*total * 37) % (table.bucket_count * 2);
                        let _ = table.bus.load_idx(table.buckets, slot % table.bucket_count);
                    }
                    word.clear();
                }
            };
            for w in 0..file_words {
                let packed = table.bus.load_idx(file, w);
                for shift in [24u32, 16, 8, 0] {
                    let byte = ((packed >> shift) & 0xff) as u8;
                    let end = w * 4 + (3 - shift / 8) >= bytes.len() as u32;
                    if byte.is_ascii_alphanumeric() && !end {
                        word.push(byte);
                    } else {
                        flush(&mut table, &mut word, &mut total_words);
                    }
                }
            }
            flush(&mut table, &mut word, &mut total_words);
        }
        // Hash-table statistics passes: walk every bucket and chain
        // repeatedly (perl's symbol-table and study passes) — the
        // zero-rich working set the FVC thrives on.
        let mut histogram = [0u32; 8];
        for _scan in 0..scans {
            for (count, _node) in table.drain_entries() {
                histogram[(count.ilog2() as usize).min(7)] += 1;
            }
        }
        let _ = histogram;

        // Report phase: collect entries, selection-sort the top 20 by
        // count, and render a padded report into an output buffer.
        let mut entries = table.drain_entries();
        entries.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        let distinct = entries.len() as u32;
        let top_count = entries.first().map(|&(c, _)| c).unwrap_or(0);
        let report = bus.global(20 * NODE_WORDS);
        for (rank, &(count, node)) in entries.iter().take(20).enumerate() {
            let base = rank as u32 * NODE_WORDS;
            bus.store_idx(report, base, count);
            for i in 0..4 {
                let w = bus.load_idx(node, 4 + i);
                bus.store_idx(report, base + 1 + i, w);
            }
        }
        self.last_result = Some((distinct, total_words, top_count));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fvl_mem::{CountingSink, NullSink, TracedMemory};

    #[test]
    fn pack_is_space_padded_big_endian() {
        let mut out = [0u32; 4];
        pack(b"x", &mut out);
        assert_eq!(out[0], 0x7820_2020);
        assert_eq!(out[1], 0x2020_2020);
        pack(b"xx x", &mut out);
        assert_eq!(out[0], 0x7878_2078);
    }

    #[test]
    fn hash_table_counts_words() {
        let mut sink = NullSink;
        let mut mem = TracedMemory::new(&mut sink);
        let mut t = HashTable::new(&mut mem, 64);
        for w in [b"the" as &[u8], b"cat", b"the", b"sat", b"the"] {
            t.bump(w);
        }
        let node = t.find(b"the").expect("present");
        let count = t.bus.load_idx(node, 1);
        assert_eq!(count, 3);
        assert!(t.find(b"dog").is_none());
        assert_eq!(t.entries, 3);
    }

    #[test]
    fn collisions_chain_correctly() {
        let mut sink = NullSink;
        let mut mem = TracedMemory::new(&mut sink);
        // One bucket: everything collides.
        let mut t = HashTable::new(&mut mem, 1);
        for w in [b"aa" as &[u8], b"bb", b"cc", b"aa"] {
            t.bump(w);
        }
        assert_eq!(t.entries, 3);
        for (w, expect) in [(b"aa" as &[u8], 2u32), (b"bb", 1), (b"cc", 1)] {
            let node = t.find(w).unwrap();
            assert_eq!(t.bus.load_idx(node, 1), expect, "{w:?}");
        }
    }

    #[test]
    fn text_generator_is_zipfy() {
        let mut rng = Rng::new(9);
        let text = generate_text(&mut rng, 2000);
        let the_count = text.split_whitespace().filter(|w| *w == "the").count();
        assert!(the_count > 20, "common words recur: {the_count}");
    }

    #[test]
    fn workload_counts_are_consistent() {
        let mut sink = CountingSink::default();
        let mut w = PerlLike::new(InputSize::Test, 11);
        {
            let mut mem = TracedMemory::new(&mut sink);
            w.run(&mut mem);
            mem.finish();
        }
        let (distinct, total, top) = w.last_result.unwrap();
        assert!(distinct > 30, "distinct={distinct}");
        assert!(total > 5_000, "total={total}");
        assert!(
            top >= total / 50,
            "the top word is common: top={top} total={total}"
        );
        assert!(sink.accesses() > 60_000, "accesses: {}", sink.accesses());
    }

    #[test]
    fn total_words_matches_host_tokenisation() {
        let mut sink = NullSink;
        let mut w = PerlLike::new(InputSize::Test, 4);
        {
            let mut mem = TracedMemory::new(&mut sink);
            w.run(&mut mem);
        }
        let (_, total, _) = w.last_result.unwrap();
        // One tokenisation pass over ~6000 generated words.
        assert!((5_500..=6_500).contains(&total), "total={total}");
    }
}
