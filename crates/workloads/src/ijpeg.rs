//! `IjpegLike` — a JPEG-style image pipeline, standing in for
//! 132.ijpeg, the paper's second negative control.
//!
//! Noisy images are transformed 8×8 block by block with an integer DCT,
//! quantized, zigzag run-length coded, then inverse-transformed and
//! compared against the original. Pixels and coefficients are dense and
//! mostly distinct, so — like the real ijpeg — the workload exhibits
//! almost no frequent value locality.

use crate::{InputSize, Rng, Workload};
use fvl_mem::{Addr, Bus, BusExt};

const B: usize = 8;

/// Fixed-point cosine table, scaled by 2^12 (host constant data; real
/// codecs bake this into the binary).
fn cos_table() -> [[i64; B]; B] {
    let mut t = [[0i64; B]; B];
    for (u, row) in t.iter_mut().enumerate() {
        for (x, v) in row.iter_mut().enumerate() {
            let angle = (2.0 * x as f64 + 1.0) * u as f64 * std::f64::consts::PI / 16.0;
            *v = (angle.cos() * 4096.0).round() as i64;
        }
    }
    t
}

/// JPEG's luminance quantization matrix (quality ~50).
const QUANT: [[i64; B]; B] = [
    [16, 11, 10, 16, 24, 40, 51, 61],
    [12, 12, 14, 19, 26, 58, 60, 55],
    [14, 13, 16, 24, 40, 57, 69, 56],
    [14, 17, 22, 29, 51, 87, 80, 62],
    [18, 22, 37, 56, 68, 109, 103, 77],
    [24, 35, 55, 64, 81, 104, 113, 92],
    [49, 64, 78, 87, 103, 121, 120, 101],
    [72, 92, 95, 98, 112, 100, 103, 99],
];

/// Zigzag scan order.
fn zigzag_order() -> [(usize, usize); 64] {
    let mut order = [(0usize, 0usize); 64];
    let mut n = 0;
    for s in 0..(2 * B - 1) {
        let coords: Vec<(usize, usize)> = (0..=s.min(B - 1))
            .filter_map(|i| {
                let j = s - i;
                (j < B).then_some((i, j))
            })
            .collect();
        let iter: Box<dyn Iterator<Item = (usize, usize)>> = if s % 2 == 0 {
            Box::new(coords.into_iter().rev())
        } else {
            Box::new(coords.into_iter())
        };
        for c in iter {
            order[n] = c;
            n += 1;
        }
    }
    order
}

struct Codec<'b> {
    bus: &'b mut dyn Bus,
    cos: [[i64; B]; B],
    zigzag: [(usize, usize); 64],
}

impl<'b> Codec<'b> {
    fn new(bus: &'b mut dyn Bus) -> Self {
        Codec {
            bus,
            cos: cos_table(),
            zigzag: zigzag_order(),
        }
    }

    fn load_block(&mut self, img: Addr, width: u32, bx: u32, by: u32, out: &mut [[i64; B]; B]) {
        for (r, row) in out.iter_mut().enumerate() {
            for (c, v) in row.iter_mut().enumerate() {
                let idx = (by * 8 + r as u32) * width + bx * 8 + c as u32;
                *v = self.bus.load_idx(img, idx) as i64 - 128;
            }
        }
    }

    fn store_block(&mut self, img: Addr, width: u32, bx: u32, by: u32, data: &[[i64; B]; B]) {
        for (r, row) in data.iter().enumerate() {
            for (c, &v) in row.iter().enumerate() {
                let idx = (by * 8 + r as u32) * width + bx * 8 + c as u32;
                let pix = (v + 128).clamp(0, 255) as u32;
                self.bus.store_idx(img, idx, pix);
            }
        }
    }

    /// Forward 2-D DCT (fixed point), then quantization.
    fn fdct_quant(&self, block: &[[i64; B]; B], out: &mut [[i64; B]; B]) {
        for u in 0..B {
            for v in 0..B {
                let mut acc = 0i64;
                for (x, row) in block.iter().enumerate() {
                    for (y, &p) in row.iter().enumerate() {
                        acc += p * self.cos[u][x] * self.cos[v][y];
                    }
                }
                // cu*cv normalisation: 1/sqrt(2) for index 0.
                let mut coeff = acc >> 12; // one 4096 factor out
                if u == 0 {
                    coeff = (coeff * 2896) >> 12; // 1/sqrt(2)
                }
                if v == 0 {
                    coeff = (coeff * 2896) >> 12;
                }
                coeff >>= 14; // remaining scale: 4096/4 = /16384
                out[u][v] = coeff / QUANT[u][v];
            }
        }
    }

    /// Dequantization and inverse DCT.
    fn dequant_idct(&self, block: &[[i64; B]; B], out: &mut [[i64; B]; B]) {
        let mut deq = [[0i64; B]; B];
        for u in 0..B {
            for v in 0..B {
                deq[u][v] = block[u][v] * QUANT[u][v];
            }
        }
        for (x, row) in out.iter_mut().enumerate() {
            for (y, pix) in row.iter_mut().enumerate() {
                let mut acc = 0i64;
                for (u, drow) in deq.iter().enumerate() {
                    for (v, &d) in drow.iter().enumerate() {
                        let mut term = d * self.cos[u][x] * self.cos[v][y];
                        if u == 0 {
                            term = (term * 2896) >> 12;
                        }
                        if v == 0 {
                            term = (term * 2896) >> 12;
                        }
                        acc += term;
                    }
                }
                *pix = acc >> 26; // 4096^2 / 4... empirical scale back
            }
        }
    }

    /// Zigzag + RLE encodes one quantized block into the traced output
    /// stream as (run, value) word pairs; returns pairs written.
    fn rle_encode(&mut self, block: &[[i64; B]; B], out: Addr, at: u32) -> u32 {
        let mut n = 0u32;
        let mut run = 0u32;
        for &(r, c) in &self.zigzag {
            let v = block[r][c];
            if v == 0 {
                run += 1;
            } else {
                self.bus.store_idx(out, at + n * 2, run);
                self.bus.store_idx(out, at + n * 2 + 1, v as u32);
                n += 1;
                run = 0;
            }
        }
        // End-of-block marker.
        self.bus.store_idx(out, at + n * 2, 0xffff);
        self.bus.store_idx(out, at + n * 2 + 1, 0);
        n + 1
    }

    /// Decodes one RLE block back into coefficients.
    fn rle_decode(&mut self, input: Addr, at: u32, block: &mut [[i64; B]; B]) -> u32 {
        *block = [[0; B]; B];
        let mut pos = 0usize;
        let mut n = 0u32;
        loop {
            let run = self.bus.load_idx(input, at + n * 2);
            let val = self.bus.load_idx(input, at + n * 2 + 1);
            n += 1;
            if run == 0xffff {
                return n;
            }
            pos += run as usize;
            let (r, c) = self.zigzag[pos];
            block[r][c] = val as i32 as i64;
            pos += 1;
        }
    }
}

/// The 132.ijpeg stand-in.
#[derive(Debug)]
pub struct IjpegLike {
    input: InputSize,
    seed: u64,
    /// (blocks processed, mean absolute reconstruction error ×100).
    pub last_result: Option<(u32, u64)>,
}

impl IjpegLike {
    /// Creates the workload.
    pub fn new(input: InputSize, seed: u64) -> Self {
        IjpegLike {
            input,
            seed,
            last_result: None,
        }
    }
}

impl Workload for IjpegLike {
    fn name(&self) -> &'static str {
        "ijpeg"
    }

    fn mirrors(&self) -> &'static str {
        "132.ijpeg"
    }

    fn run(&mut self, bus: &mut dyn Bus) {
        let (width, height, images) = match self.input {
            InputSize::Test => (96u32, 96u32, 2u32),
            InputSize::Train => (192, 192, 3),
            InputSize::Ref => (320, 256, 4),
        };
        let mut rng = Rng::new(self.seed ^ 0x1CE);
        let pixels = width * height;
        let img = bus.alloc(pixels);
        let recon = bus.alloc(pixels);
        // Worst case: 65 (run,value) pairs per 64-pixel block.
        let stream = bus.alloc(pixels * 3 + 256);
        let mut codec = Codec::new(bus);
        let mut blocks_done = 0u32;
        let mut abs_err_sum = 0u64;
        let mut err_samples = 0u64;
        for _ in 0..images {
            // Smooth gradient + noise: partially compressible, like a
            // photo.
            for y in 0..height {
                for x in 0..width {
                    let smooth = (x * 255 / width + y * 255 / height) / 2;
                    let noise = rng.below(64);
                    let pix = (smooth + noise).min(255);
                    codec.bus.store_idx(img, y * width + x, pix);
                }
            }
            let mut raw = [[0i64; B]; B];
            let mut coeffs = [[0i64; B]; B];
            let mut decoded = [[0i64; B]; B];
            let mut rebuilt = [[0i64; B]; B];
            let mut at = 0u32;
            for by in 0..height / 8 {
                for bx in 0..width / 8 {
                    codec.load_block(img, width, bx, by, &mut raw);
                    codec.fdct_quant(&raw, &mut coeffs);
                    let pairs = codec.rle_encode(&coeffs, stream, at);
                    let consumed = codec.rle_decode(stream, at, &mut decoded);
                    assert_eq!(consumed, pairs, "RLE round trip");
                    assert_eq!(decoded, coeffs, "zigzag/RLE is lossless");
                    at += pairs * 2;
                    codec.dequant_idct(&decoded, &mut rebuilt);
                    codec.store_block(recon, width, bx, by, &rebuilt);
                    blocks_done += 1;
                }
            }
            // Reconstruction error (lossy but bounded).
            for i in (0..pixels).step_by(13) {
                let a = codec.bus.load_idx(img, i) as i64;
                let b = codec.bus.load_idx(recon, i) as i64;
                abs_err_sum += (a - b).unsigned_abs();
                err_samples += 1;
            }
        }
        let mean_err_x100 = abs_err_sum * 100 / err_samples.max(1);
        self.last_result = Some((blocks_done, mean_err_x100));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fvl_mem::{CountingSink, NullSink, TracedMemory};

    #[test]
    fn zigzag_covers_all_64_cells_once() {
        let order = zigzag_order();
        let mut seen = [[false; B]; B];
        for (r, c) in order {
            assert!(!seen[r][c], "duplicate ({r},{c})");
            seen[r][c] = true;
        }
        assert_eq!(order[0], (0, 0));
        assert_eq!(order[1], (0, 1), "jpeg zigzag starts rightward");
        assert_eq!(order[63], (7, 7));
    }

    #[test]
    fn flat_block_has_only_dc() {
        let mut sink = NullSink;
        let mut mem = TracedMemory::new(&mut sink);
        let codec = Codec::new(&mut mem);
        let block = [[50i64; B]; B];
        let mut coeffs = [[0i64; B]; B];
        codec.fdct_quant(&block, &mut coeffs);
        for (u, row) in coeffs.iter().enumerate() {
            for (v, &c) in row.iter().enumerate() {
                if (u, v) != (0, 0) {
                    assert_eq!(c, 0, "AC({u},{v}) of a flat block");
                }
            }
        }
        assert!(coeffs[0][0] != 0, "DC captures the level");
    }

    #[test]
    fn dct_round_trip_is_close() {
        let mut sink = NullSink;
        let mut mem = TracedMemory::new(&mut sink);
        let codec = Codec::new(&mut mem);
        let mut rng = Rng::new(3);
        // Smooth-ish block.
        let mut block = [[0i64; B]; B];
        for (r, row) in block.iter_mut().enumerate() {
            for (c, v) in row.iter_mut().enumerate() {
                *v = (r as i64 * 10 + c as i64 * 5) - 90 + rng.below(8) as i64;
            }
        }
        let mut coeffs = [[0i64; B]; B];
        let mut rebuilt = [[0i64; B]; B];
        codec.fdct_quant(&block, &mut coeffs);
        codec.dequant_idct(&coeffs, &mut rebuilt);
        let mut max_err = 0i64;
        for r in 0..B {
            for c in 0..B {
                max_err = max_err.max((block[r][c] - rebuilt[r][c]).abs());
            }
        }
        assert!(max_err <= 24, "lossy but bounded: max_err={max_err}");
    }

    #[test]
    fn rle_round_trip_exact() {
        let mut sink = NullSink;
        let mut mem = TracedMemory::new(&mut sink);
        let stream = mem.alloc(256);
        let mut codec = Codec::new(&mut mem);
        let mut block = [[0i64; B]; B];
        block[0][0] = 31;
        block[0][1] = -4;
        block[3][2] = 7;
        block[7][7] = -1;
        let pairs = codec.rle_encode(&block, stream, 0);
        let mut decoded = [[99i64; B]; B];
        let consumed = codec.rle_decode(stream, 0, &mut decoded);
        assert_eq!(pairs, consumed);
        assert_eq!(decoded, block);
    }

    #[test]
    fn full_workload_reconstruction_is_reasonable() {
        let mut sink = CountingSink::default();
        let mut w = IjpegLike::new(InputSize::Test, 9);
        {
            let mut mem = TracedMemory::new(&mut sink);
            w.run(&mut mem);
            mem.finish();
        }
        let (blocks, err_x100) = w.last_result.unwrap();
        assert_eq!(blocks, 2 * (96 / 8) * (96 / 8));
        assert!(err_x100 < 3000, "mean abs error < 30 pixels: {err_x100}");
        assert!(sink.accesses() > 50_000);
    }
}
