//! `LiLike` — a genuine mini-Lisp interpreter with mark/sweep GC,
//! standing in for 130.li (xlisp).
//!
//! All interpreter *data* — cons cells, environments, integers, symbols —
//! lives in simulated memory; only control flow runs on the host. The
//! value behavior mirrors xlisp's: cells are dominated by small tags and
//! NIL (0) pointers, environments are assoc lists walked on every
//! variable reference, and the collector periodically sweeps the whole
//! heap flipping mark words — which is also why `li` shows the *lowest*
//! constant-address percentage in the paper's Table 4.

use crate::{InputSize, Workload};
use fvl_mem::{Addr, Bus, BusExt};
use std::collections::HashMap;

/// Cell tags. A free cell is tag 0 so that freshly swept memory is
/// zero-dominated, like a real heap.
const T_FREE: u32 = 0;
const T_INT: u32 = 1;
const T_SYM: u32 = 2;
const T_CONS: u32 = 3;
const T_LAMBDA: u32 = 4;

/// Words per cell: tag, car, cdr, mark.
const CELL_WORDS: u32 = 4;
const OFF_TAG: u32 = 0;
const OFF_CAR: u32 = 1;
const OFF_CDR: u32 = 2;
const OFF_MARK: u32 = 3;

/// NIL is the null address, so list terminators are stored as 0.
const NIL: Addr = 0;

/// Host-side parsed expression (the "source file"); the interpreter
/// immediately lowers it into cells in simulated memory.
enum Sexp {
    Int(i32),
    Sym(String),
    List(Vec<Sexp>),
}

fn parse(src: &str) -> Vec<Sexp> {
    let mut tokens = Vec::new();
    let mut cur = String::new();
    for ch in src.chars() {
        match ch {
            '(' | ')' => {
                if !cur.is_empty() {
                    tokens.push(std::mem::take(&mut cur));
                }
                tokens.push(ch.to_string());
            }
            c if c.is_whitespace() => {
                if !cur.is_empty() {
                    tokens.push(std::mem::take(&mut cur));
                }
            }
            c => cur.push(c),
        }
    }
    if !cur.is_empty() {
        tokens.push(cur);
    }
    let mut pos = 0;
    let mut out = Vec::new();
    while pos < tokens.len() {
        out.push(parse_one(&tokens, &mut pos));
    }
    out
}

fn parse_one(tokens: &[String], pos: &mut usize) -> Sexp {
    let tok = &tokens[*pos];
    *pos += 1;
    if tok == "(" {
        let mut items = Vec::new();
        while tokens[*pos] != ")" {
            items.push(parse_one(tokens, pos));
        }
        *pos += 1; // consume ')'
        Sexp::List(items)
    } else if let Ok(n) = tok.parse::<i32>() {
        Sexp::Int(n)
    } else {
        Sexp::Sym(tok.clone())
    }
}

/// The interpreter: arena of cells in simulated memory + host control.
struct Interp<'b> {
    bus: &'b mut dyn Bus,
    arena: Addr,
    cells: u32,
    free: Addr,
    /// Shadow stack of GC roots (cell addresses).
    roots: Vec<Addr>,
    symbols: HashMap<String, Addr>,
    names: HashMap<Addr, String>,
    symbol_ids: u32,
    global_env: Addr,
    gc_runs: u32,
    allocs: u64,
}

impl<'b> Interp<'b> {
    fn new(bus: &'b mut dyn Bus, cells: u32) -> Self {
        let arena = bus.alloc(cells * CELL_WORDS);
        let mut interp = Interp {
            bus,
            arena,
            cells,
            free: NIL,
            roots: Vec::new(),
            symbols: HashMap::new(),
            names: HashMap::new(),
            symbol_ids: 0,
            global_env: NIL,
            gc_runs: 0,
            allocs: 0,
        };
        interp.build_free_list();
        interp
    }

    fn build_free_list(&mut self) {
        self.free = NIL;
        for i in (0..self.cells).rev() {
            let cell = self.arena + i * CELL_WORDS * 4;
            // Thread the link first, then publish the tag: first touch
            // of each fresh line is the (distinct) link pointer.
            self.bus.store(cell + OFF_CAR * 4, self.free);
            self.bus.store(cell + OFF_TAG * 4, T_FREE);
            self.free = cell;
        }
    }

    fn tag(&mut self, cell: Addr) -> u32 {
        self.bus.load(cell + OFF_TAG * 4)
    }

    fn car(&mut self, cell: Addr) -> Addr {
        self.bus.load(cell + OFF_CAR * 4)
    }

    fn cdr(&mut self, cell: Addr) -> Addr {
        self.bus.load(cell + OFF_CDR * 4)
    }

    fn set_car(&mut self, cell: Addr, v: u32) {
        self.bus.store(cell + OFF_CAR * 4, v);
    }

    fn alloc_cell(&mut self, tag: u32, car: u32, cdr: u32) -> Addr {
        if self.free == NIL {
            self.gc();
            assert!(self.free != NIL, "lisp heap exhausted even after GC");
        }
        let cell = self.free;
        self.free = self.car(cell);
        self.bus.store(cell + OFF_TAG * 4, tag);
        self.bus.store(cell + OFF_CAR * 4, car);
        self.bus.store(cell + OFF_CDR * 4, cdr);
        self.bus.store(cell + OFF_MARK * 4, 0);
        self.allocs += 1;
        cell
    }

    fn cons(&mut self, car: Addr, cdr: Addr) -> Addr {
        self.alloc_cell(T_CONS, car, cdr)
    }

    fn int(&mut self, v: i32) -> Addr {
        self.alloc_cell(T_INT, v as u32, NIL)
    }

    fn int_val(&mut self, cell: Addr) -> i32 {
        debug_assert_eq!(self.tag(cell), T_INT);
        self.car(cell) as i32
    }

    fn symbol(&mut self, name: &str) -> Addr {
        if let Some(&addr) = self.symbols.get(name) {
            return addr;
        }
        self.symbol_ids += 1;
        let id = self.symbol_ids;
        let cell = self.alloc_cell(T_SYM, id, NIL);
        self.symbols.insert(name.to_string(), cell);
        self.names.insert(cell, name.to_string());
        // Symbols are permanent roots.
        self.roots.push(cell);
        cell
    }

    // ---- garbage collection -------------------------------------------

    fn mark(&mut self, start: Addr) {
        let mut stack = vec![start];
        while let Some(cell) = stack.pop() {
            if cell == NIL {
                continue;
            }
            if self.bus.load(cell + OFF_MARK * 4) == 1 {
                continue;
            }
            self.bus.store(cell + OFF_MARK * 4, 1);
            let tag = self.tag(cell);
            if tag == T_CONS || tag == T_LAMBDA {
                let car = self.car(cell);
                let cdr = self.cdr(cell);
                stack.push(car);
                stack.push(cdr);
            }
        }
    }

    fn gc(&mut self) {
        self.gc_runs += 1;
        let roots: Vec<Addr> = self.roots.clone();
        for root in roots {
            self.mark(root);
        }
        let genv = self.global_env;
        self.mark(genv);
        // Sweep: unmarked cells return to the free list as tag-0 cells.
        self.free = NIL;
        for i in 0..self.cells {
            let cell = self.arena + i * CELL_WORDS * 4;
            let marked = self.bus.load(cell + OFF_MARK * 4);
            if marked == 1 {
                self.bus.store(cell + OFF_MARK * 4, 0);
            } else {
                self.bus.store(cell + OFF_CAR * 4, self.free);
                self.bus.store(cell + OFF_TAG * 4, T_FREE);
                self.bus.store(cell + OFF_CDR * 4, NIL);
                self.free = cell;
            }
        }
    }

    // ---- environments --------------------------------------------------

    /// Environments are assoc lists: ((sym . value) ...), chained via a
    /// parent link stored as the final cdr element's cdr... simply: an
    /// env is a list of frames; a frame is an assoc list.
    fn env_lookup(&mut self, env: Addr, sym: Addr) -> Option<Addr> {
        let mut frame_list = env;
        while frame_list != NIL {
            let mut assoc = self.car(frame_list);
            while assoc != NIL {
                let pair = self.car(assoc);
                let key = self.car(pair);
                if key == sym {
                    return Some(self.cdr(pair));
                }
                assoc = self.cdr(assoc);
            }
            frame_list = self.cdr(frame_list);
        }
        None
    }

    fn env_define(&mut self, env: Addr, sym: Addr, value: Addr) {
        // Root intermediates: both conses may trigger a collection.
        self.roots.push(sym);
        self.roots.push(value);
        let pair = self.cons(sym, value);
        self.roots.push(pair);
        let frame = self.car(env);
        let frame = self.cons(pair, frame);
        self.roots.pop();
        self.roots.pop();
        self.roots.pop();
        self.set_car(env, frame);
    }

    fn env_push_frame(&mut self, env: Addr) -> Addr {
        self.cons(NIL, env)
    }

    // ---- lowering host sexps into cells --------------------------------

    fn lower(&mut self, sexp: &Sexp) -> Addr {
        match sexp {
            Sexp::Int(n) => self.int(*n),
            Sexp::Sym(s) => self.symbol(s),
            Sexp::List(items) => {
                // The partial list stays rooted across every recursive
                // lower() and cons(): GC can run inside either.
                let mut list = NIL;
                self.roots.push(list);
                for item in items.iter().rev() {
                    let cell = self.lower(item);
                    self.roots.push(cell);
                    list = self.cons(cell, list);
                    self.roots.pop();
                    *self.roots.last_mut().expect("slot pushed above") = list;
                }
                self.roots.pop();
                list
            }
        }
    }

    // ---- evaluation -----------------------------------------------------

    fn truthy(&mut self, v: Addr) -> bool {
        v != NIL
    }

    fn eval(&mut self, expr: Addr, env: Addr) -> Addr {
        self.roots.push(expr);
        self.roots.push(env);
        let result = self.eval_inner(expr, env);
        self.roots.pop();
        self.roots.pop();
        result
    }

    fn eval_inner(&mut self, expr: Addr, env: Addr) -> Addr {
        if expr == NIL {
            return NIL;
        }
        match self.tag(expr) {
            T_INT | T_LAMBDA => expr,
            T_SYM => self
                .env_lookup(env, expr)
                .unwrap_or_else(|| panic!("unbound symbol cell {expr:#x}")),
            T_CONS => self.eval_form(expr, env),
            t => panic!("cannot evaluate tag {t}"),
        }
    }

    fn nth(&mut self, list: Addr, n: u32) -> Addr {
        let mut cur = list;
        for _ in 0..n {
            cur = self.cdr(cur);
        }
        self.car(cur)
    }

    fn eval_form(&mut self, expr: Addr, env: Addr) -> Addr {
        let head = self.car(expr);
        // Special forms dispatch on symbol identity.
        if self.tag(head) == T_SYM {
            let name = self.symbol_name(head);
            match name.as_deref() {
                Some("quote") => return self.nth(expr, 1),
                Some("if") => {
                    let cond_e = self.nth(expr, 1);
                    let cond = self.eval(cond_e, env);
                    let branch = if self.truthy(cond) { 2 } else { 3 };
                    let be = self.nth(expr, branch);
                    return self.eval(be, env);
                }
                Some("define") => {
                    let target = self.nth(expr, 1);
                    if self.tag(target) == T_CONS {
                        // (define (f a b) body...) sugar.
                        let fname = self.car(target);
                        let params = self.cdr(target);
                        let body = self.nth(expr, 2);
                        let clos = self.make_lambda(params, body, env);
                        self.env_define(env, fname, clos);
                        return fname;
                    }
                    let value_e = self.nth(expr, 2);
                    let value = self.eval(value_e, env);
                    self.roots.push(value);
                    self.env_define(env, target, value);
                    self.roots.pop();
                    return target;
                }
                Some("lambda") => {
                    let params = self.nth(expr, 1);
                    let body = self.nth(expr, 2);
                    return self.make_lambda(params, body, env);
                }
                Some("begin") => {
                    let mut cur = self.cdr(expr);
                    let mut last = NIL;
                    self.roots.push(last);
                    while cur != NIL {
                        let e = self.car(cur);
                        last = self.eval(e, env);
                        *self.roots.last_mut().expect("slot pushed above") = last;
                        cur = self.cdr(cur);
                    }
                    self.roots.pop();
                    return last;
                }
                _ => {}
            }
        }
        // Application.
        let callee = self.eval(head, env);
        self.roots.push(callee);
        // Evaluate arguments into a cell list (rooted as we go).
        let mut args = Vec::new();
        let mut cur = self.cdr(expr);
        while cur != NIL {
            let e = self.car(cur);
            let v = self.eval(e, env);
            self.roots.push(v);
            args.push(v);
            cur = self.cdr(cur);
        }
        let result = self.apply(callee, &args, env);
        for _ in 0..args.len() {
            self.roots.pop();
        }
        self.roots.pop();
        result
    }

    fn symbol_name(&self, cell: Addr) -> Option<String> {
        self.names.get(&cell).cloned()
    }

    fn make_lambda(&mut self, params: Addr, body: Addr, env: Addr) -> Addr {
        // lambda cell: car = (params . body), cdr = captured env.
        let pb = self.cons(params, body);
        self.roots.push(pb);
        let l = self.alloc_cell(T_LAMBDA, pb, env);
        self.roots.pop();
        l
    }

    fn apply(&mut self, callee: Addr, args: &[Addr], env: Addr) -> Addr {
        if self.tag(callee) == T_LAMBDA {
            let pb = self.car(callee);
            let closure_env = self.cdr(callee);
            let params = self.car(pb);
            let body = self.cdr(pb);
            let frame_env = self.env_push_frame(closure_env);
            self.roots.push(frame_env);
            let mut p = params;
            for &arg in args {
                let sym = self.car(p);
                self.env_define(frame_env, sym, arg);
                p = self.cdr(p);
            }
            let result = self.eval(body, frame_env);
            self.roots.pop();
            return result;
        }
        // Builtins are symbols.
        let name = self.symbol_name(callee).unwrap_or_default();
        let int_of = |i: &mut Self, a: Addr| i.int_val(a);
        match name.as_str() {
            "+" => {
                let mut acc = 0i64;
                for &a in args {
                    acc += int_of(self, a) as i64;
                }
                self.int(acc as i32)
            }
            "-" => {
                let first = int_of(self, args[0]);
                if args.len() == 1 {
                    self.int(-first)
                } else {
                    let mut acc = first as i64;
                    for &a in &args[1..] {
                        acc -= int_of(self, a) as i64;
                    }
                    self.int(acc as i32)
                }
            }
            "*" => {
                let mut acc = 1i64;
                for &a in args {
                    acc = acc.wrapping_mul(int_of(self, a) as i64);
                }
                self.int(acc as i32)
            }
            "<" => {
                let a = int_of(self, args[0]);
                let b = int_of(self, args[1]);
                if a < b {
                    self.symbol("t")
                } else {
                    NIL
                }
            }
            "=" => {
                let a = int_of(self, args[0]);
                let b = int_of(self, args[1]);
                if a == b {
                    self.symbol("t")
                } else {
                    NIL
                }
            }
            "cons" => self.cons(args[0], args[1]),
            "car" => self.car(args[0]),
            "cdr" => self.cdr(args[0]),
            "null?" => {
                if args[0] == NIL {
                    self.symbol("t")
                } else {
                    NIL
                }
            }
            "" => panic!("application of non-function"),
            other => {
                // A user function bound in the environment under this
                // symbol (builtins shadowable).
                if let Some(f) = self.env_lookup(env, callee) {
                    if f != callee {
                        return self.apply(f, args, env);
                    }
                }
                panic!("unknown builtin {other}")
            }
        }
    }

    fn run_program(&mut self, src: &str) -> Vec<i32> {
        let forms = parse(src);
        // Pre-intern builtins bound to themselves.
        let genv = self.env_push_frame(NIL);
        self.global_env = genv;
        for b in ["+", "-", "*", "<", "=", "cons", "car", "cdr", "null?", "t"] {
            let sym = self.symbol(b);
            self.env_define(genv, sym, sym);
        }
        let mut results = Vec::new();
        for form in &forms {
            let expr = self.lower(form);
            self.roots.push(expr);
            let genv = self.global_env;
            let v = self.eval(expr, genv);
            self.roots.pop();
            if v != NIL && self.tag(v) == T_INT {
                results.push(self.int_val(v));
            }
        }
        results
    }
}

/// The 130.li stand-in: a Lisp interpreter running list-heavy benchmark
/// scripts (fib, tak, list construction and reversal) sized by
/// [`InputSize`].
#[derive(Debug)]
pub struct LiLike {
    input: InputSize,
    seed: u64,
    /// Results of the integer-valued top-level forms (for verification).
    pub last_results: Vec<i32>,
}

impl LiLike {
    /// Creates the workload.
    pub fn new(input: InputSize, seed: u64) -> Self {
        LiLike {
            input,
            seed,
            last_results: Vec::new(),
        }
    }

    fn script(&self) -> (String, u32) {
        // (fib n), (tak ...), and list churn; sizes per input class.
        let (fib_n, tak, len, cells) = match self.input {
            InputSize::Test => (11, (8, 5, 2), 120, 24_000),
            InputSize::Train => (15, (11, 7, 3), 250, 48_000),
            InputSize::Ref => (17, (13, 8, 4), 600, 64_000),
        };
        let salt = (self.seed % 5) as i32;
        let src = format!(
            "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))
             (define (tak x y z)
               (if (< y x)
                   (tak (tak (- x 1) y z) (tak (- y 1) z x) (tak (- z 1) x y))
                   z))
             (define (build n acc) (if (= n 0) acc (build (- n 1) (cons n acc))))
             (define (len l) (if (null? l) 0 (+ 1 (len (cdr l)))))
             (define (rev l acc) (if (null? l) acc (rev (cdr l) (cons (car l) acc))))
             (define (sum l) (if (null? l) 0 (+ (car l) (sum (cdr l)))))
             (fib {fib_n})
             (tak {} {} {})
             (define xs (build {len} (quote ())))
             (len xs)
             (sum (rev xs (quote ())))
             (+ (fib 10) {salt})",
            tak.0, tak.1, tak.2
        );
        (src, cells)
    }
}

impl Workload for LiLike {
    fn name(&self) -> &'static str {
        "li"
    }

    fn mirrors(&self) -> &'static str {
        "130.li"
    }

    fn run(&mut self, bus: &mut dyn Bus) {
        let (src, cells) = self.script();
        let mut interp = Interp::new(bus, cells);
        self.last_results = interp.run_program(&src);
        // Locals for the tail: a realistic program also reports via a
        // small stack frame.
        let frame = bus.push_frame(4);
        for (i, &r) in self.last_results.iter().take(4).enumerate() {
            bus.store_idx(frame, i as u32, r as u32);
        }
        bus.pop_frame();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fvl_mem::{CountingSink, NullSink, TracedMemory};

    fn run_script(src: &str, cells: u32) -> Vec<i32> {
        let mut sink = NullSink;
        let mut mem = TracedMemory::new(&mut sink);
        let mut interp = Interp::new(&mut mem, cells);
        interp.run_program(src)
    }

    #[test]
    fn arithmetic_and_special_forms() {
        assert_eq!(run_script("(+ 1 2 3)", 4096), vec![6]);
        assert_eq!(run_script("(- 10 4 1)", 4096), vec![5]);
        assert_eq!(run_script("(* 3 4 5)", 4096), vec![60]);
        assert_eq!(run_script("(if (< 1 2) 10 20)", 4096), vec![10]);
        assert_eq!(run_script("(if (< 2 1) 10 20)", 4096), vec![20]);
        assert_eq!(run_script("(begin 1 2 3)", 4096), vec![3]);
        assert_eq!(run_script("(car (quote (7 8 9)))", 4096), vec![7]);
    }

    #[test]
    fn define_lambda_and_recursion() {
        assert_eq!(run_script("(define (sq x) (* x x)) (sq 9)", 4096), vec![81]);
        assert_eq!(
            run_script(
                "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))) (fib 10)",
                16384
            ),
            vec![55]
        );
        assert_eq!(
            run_script("(define f (lambda (x) (+ x 1))) (f 41)", 4096),
            vec![42]
        );
    }

    #[test]
    fn closures_capture_environment() {
        assert_eq!(
            run_script(
                "(define (adder n) (lambda (x) (+ x n)))
                 (define add5 (adder 5))
                 (add5 37)",
                4096
            ),
            vec![42]
        );
    }

    #[test]
    fn list_operations() {
        assert_eq!(
            run_script(
                "(define (build n acc) (if (= n 0) acc (build (- n 1) (cons n acc))))
                 (define (sum l) (if (null? l) 0 (+ (car l) (sum (cdr l)))))
                 (sum (build 50 (quote ())))",
                16384
            ),
            vec![1275]
        );
    }

    #[test]
    fn gc_reclaims_garbage_and_preserves_live_data() {
        // A heap far too small for the total allocation volume forces
        // many collections; the result must still be correct.
        let src = "(define (build n acc) (if (= n 0) acc (build (- n 1) (cons n acc))))
                   (define (len l) (if (null? l) 0 (+ 1 (len (cdr l)))))
                   (define (churn n) (if (= n 0) 0 (+ (len (build 30 (quote ()))) (churn (- n 1)))))
                   (churn 40)";
        let mut sink = NullSink;
        let mut mem = TracedMemory::new(&mut sink);
        let mut interp = Interp::new(&mut mem, 3000);
        let r = interp.run_program(src);
        assert_eq!(r, vec![1200]);
        assert!(
            interp.gc_runs > 0,
            "GC must have run (allocs={})",
            interp.allocs
        );
    }

    #[test]
    fn tak_is_correct() {
        fn tak(x: i32, y: i32, z: i32) -> i32 {
            if y < x {
                tak(tak(x - 1, y, z), tak(y - 1, z, x), tak(z - 1, x, y))
            } else {
                z
            }
        }
        let src = "(define (tak x y z) (if (< y x) (tak (tak (- x 1) y z) (tak (- y 1) z x) (tak (- z 1) x y)) z)) (tak 8 4 2)";
        assert_eq!(run_script(src, 65536), vec![tak(8, 4, 2)]);
    }

    #[test]
    fn full_workload_results_are_correct() {
        let mut sink = CountingSink::default();
        let mut w = LiLike::new(InputSize::Test, 1);
        {
            let mut mem = TracedMemory::new(&mut sink);
            w.run(&mut mem);
            mem.finish();
        }
        // fib 11 = 89; len=120;
        // sum 1..120 = 7260; fib 10 + salt(seed1 -> 1) = 56.
        assert_eq!(w.last_results[0], 89);
        assert_eq!(w.last_results[2], 120);
        assert_eq!(w.last_results[3], 7260);
        assert_eq!(w.last_results[4], 55 + 1);
        assert!(sink.accesses() > 50_000);
    }
}
