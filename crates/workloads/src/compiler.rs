//! `GccLike` — a miniature compiler pipeline, standing in for 126.gcc.
//!
//! Generated source files are lexed out of simulated memory, parsed into
//! an AST heap of small tagged nodes (null children abound), constant-
//! folded, dead-code eliminated, and compiled to stack-machine code that
//! is finally *executed* by a little VM — also out of simulated memory —
//! to verify the whole pipeline. Like gcc, the memory image is linked
//! node structures full of zeros, small tag enums, and pointers.

use crate::{InputSize, Rng, Workload};
use fvl_mem::{Addr, Bus, BusExt};

// Token kinds (stored in the traced token stream).
const TK_EOF: u32 = 0;
const TK_NUM: u32 = 1;
const TK_IDENT: u32 = 2; // value = variable index
const TK_PLUS: u32 = 3;
const TK_MINUS: u32 = 4;
const TK_STAR: u32 = 5;
const TK_LPAREN: u32 = 6;
const TK_RPAREN: u32 = 7;
const TK_ASSIGN: u32 = 8;
const TK_SEMI: u32 = 9;
const TK_LET: u32 = 10;
const TK_RET: u32 = 11;

// AST node kinds: node = [kind, a, b, spare].
const N_CONST: u32 = 1; // a = value
const N_VAR: u32 = 2; // a = variable index
const N_ADD: u32 = 3; // a, b = children
const N_SUB: u32 = 4;
const N_MUL: u32 = 5;
const N_ASSIGN: u32 = 6; // a = var index, b = expr
const N_RET: u32 = 7; // a = expr
const N_SEQ: u32 = 8; // a = stmt, b = rest (nil = 0)

// Stack-machine opcodes.
const VM_PUSH: u32 = 1;
const VM_LOAD: u32 = 2;
const VM_STORE: u32 = 3;
const VM_ADD: u32 = 4;
const VM_SUB: u32 = 5;
const VM_MUL: u32 = 6;
const VM_RET: u32 = 7;

const NUM_VARS: u32 = 8;

/// Generates one source function: a series of `let`/assignments over
/// variables a..h and a final `ret` expression. Also computes the
/// expected return value on the host (the oracle).
fn generate_function(rng: &mut Rng, stmts: u32) -> (String, i64) {
    let mut vars = [0i64; NUM_VARS as usize];
    let mut src = String::new();
    let names = ["a", "b", "c", "d", "e", "f", "g", "h"];
    fn gen_expr(rng: &mut Rng, vars: &[i64], depth: u32, src: &mut String) -> i64 {
        if depth == 0 || rng.chance(0.4) {
            if rng.chance(0.5) {
                let n = rng.below(100) as i64;
                src.push_str(&n.to_string());
                n
            } else {
                let v = rng.below(NUM_VARS) as usize;
                src.push_str(["a", "b", "c", "d", "e", "f", "g", "h"][v]);
                vars[v]
            }
        } else {
            src.push('(');
            let l = gen_expr(rng, vars, depth - 1, src);
            let op = rng.below(3);
            src.push_str([" + ", " - ", " * "][op as usize]);
            let r = gen_expr(rng, vars, depth - 1, src);
            src.push(')');
            match op {
                0 => l.wrapping_add(r),
                1 => l.wrapping_sub(r),
                _ => l.wrapping_mul(r),
            }
        }
    }
    for _ in 0..stmts {
        let target = rng.below(NUM_VARS) as usize;
        src.push_str("let ");
        src.push_str(names[target]);
        src.push_str(" = ");
        let value = gen_expr(rng, &vars, 3, &mut src);
        vars[target] = value;
        src.push_str(" ;\n");
    }
    src.push_str("ret ");
    let result = gen_expr(rng, &vars, 3, &mut src);
    src.push_str(" ;\n");
    (src, result)
}

/// The compiler: all intermediate structures live in bus memory.
struct Compiler<'b> {
    bus: &'b mut dyn Bus,
    /// Nodes allocated for the current unit (freed together, obstack
    /// style, so consecutive units recycle the same arena addresses).
    unit_nodes: Vec<Addr>,
    nodes_allocated: u32,
    pub folded: u32,
    pub dce_removed: u32,
}

impl<'b> Compiler<'b> {
    fn new(bus: &'b mut dyn Bus) -> Self {
        Compiler {
            bus,
            unit_nodes: Vec::new(),
            nodes_allocated: 0,
            folded: 0,
            dce_removed: 0,
        }
    }

    /// Releases every AST node of the finished unit (gcc's per-function
    /// obstack release).
    fn release_unit(&mut self) {
        for node in self.unit_nodes.drain(..).rev() {
            self.bus.free(node);
        }
    }

    fn node(&mut self, kind: u32, a: u32, b: u32) -> Addr {
        let n = self.bus.alloc(4);
        self.bus.store_idx(n, 0, kind);
        self.bus.store_idx(n, 1, a);
        self.bus.store_idx(n, 2, b);
        self.bus.store_idx(n, 3, 0);
        self.unit_nodes.push(n);
        self.nodes_allocated += 1;
        n
    }

    fn kind(&mut self, n: Addr) -> u32 {
        self.bus.load_idx(n, 0)
    }

    fn a(&mut self, n: Addr) -> u32 {
        self.bus.load_idx(n, 1)
    }

    fn b(&mut self, n: Addr) -> u32 {
        self.bus.load_idx(n, 2)
    }

    /// Lexes the packed source text into a traced token stream of
    /// [kind, value] pairs; returns (stream base, token count).
    fn lex(&mut self, file: Addr, len_bytes: u32) -> (Addr, u32) {
        let cap = len_bytes + 8;
        let stream = self.bus.alloc(cap * 2);
        let mut count = 0u32;
        let emit = |bus: &mut dyn Bus, k: u32, v: u32, count: &mut u32| {
            bus.store_idx(stream, *count * 2, k);
            bus.store_idx(stream, *count * 2 + 1, v);
            *count += 1;
        };
        let mut i = 0u32;
        let read_byte = |bus: &mut dyn Bus, i: u32| -> u8 {
            let w = bus.load_idx(file, i / 4);
            ((w >> (8 * (3 - i % 4))) & 0xff) as u8
        };
        while i < len_bytes {
            let c = read_byte(self.bus, i);
            match c {
                b' ' | b'\n' | b'\t' => i += 1,
                b'+' => {
                    emit(self.bus, TK_PLUS, 0, &mut count);
                    i += 1;
                }
                b'-' => {
                    emit(self.bus, TK_MINUS, 0, &mut count);
                    i += 1;
                }
                b'*' => {
                    emit(self.bus, TK_STAR, 0, &mut count);
                    i += 1;
                }
                b'(' => {
                    emit(self.bus, TK_LPAREN, 0, &mut count);
                    i += 1;
                }
                b')' => {
                    emit(self.bus, TK_RPAREN, 0, &mut count);
                    i += 1;
                }
                b'=' => {
                    emit(self.bus, TK_ASSIGN, 0, &mut count);
                    i += 1;
                }
                b';' => {
                    emit(self.bus, TK_SEMI, 0, &mut count);
                    i += 1;
                }
                b'0'..=b'9' => {
                    let mut v = 0u32;
                    while i < len_bytes {
                        let d = read_byte(self.bus, i);
                        if d.is_ascii_digit() {
                            v = v * 10 + (d - b'0') as u32;
                            i += 1;
                        } else {
                            break;
                        }
                    }
                    emit(self.bus, TK_NUM, v, &mut count);
                }
                b'a'..=b'z' => {
                    let mut word = Vec::new();
                    while i < len_bytes {
                        let d = read_byte(self.bus, i);
                        if d.is_ascii_lowercase() {
                            word.push(d);
                            i += 1;
                        } else {
                            break;
                        }
                    }
                    match word.as_slice() {
                        b"let" => emit(self.bus, TK_LET, 0, &mut count),
                        b"ret" => emit(self.bus, TK_RET, 0, &mut count),
                        [v] if *v >= b'a' && *v < b'a' + NUM_VARS as u8 => {
                            emit(self.bus, TK_IDENT, (*v - b'a') as u32, &mut count)
                        }
                        other => panic!("unknown identifier {:?}", String::from_utf8_lossy(other)),
                    }
                }
                other => panic!("unexpected character {other:#x}"),
            }
        }
        emit(self.bus, TK_EOF, 0, &mut count);
        (stream, count)
    }

    /// Recursive-descent parser over the traced token stream. Returns
    /// the root statement list.
    fn parse(&mut self, stream: Addr) -> Addr {
        let mut pos = 0u32;
        let root = self.parse_stmts(stream, &mut pos);
        let k = self.tok_kind(stream, pos);
        assert_eq!(k, TK_EOF, "trailing tokens");
        root
    }

    fn tok_kind(&mut self, stream: Addr, pos: u32) -> u32 {
        self.bus.load_idx(stream, pos * 2)
    }

    fn tok_value(&mut self, stream: Addr, pos: u32) -> u32 {
        self.bus.load_idx(stream, pos * 2 + 1)
    }

    fn expect(&mut self, stream: Addr, pos: &mut u32, kind: u32) -> u32 {
        let k = self.tok_kind(stream, *pos);
        assert_eq!(k, kind, "parse error at token {}", *pos);
        let v = self.tok_value(stream, *pos);
        *pos += 1;
        v
    }

    fn parse_stmts(&mut self, stream: Addr, pos: &mut u32) -> Addr {
        let k = self.tok_kind(stream, *pos);
        if k == TK_EOF {
            return 0;
        }
        let stmt = if k == TK_LET {
            *pos += 1;
            let var = self.expect(stream, pos, TK_IDENT);
            self.expect(stream, pos, TK_ASSIGN);
            let e = self.parse_expr(stream, pos);
            self.expect(stream, pos, TK_SEMI);
            self.node(N_ASSIGN, var, e)
        } else {
            self.expect(stream, pos, TK_RET);
            let e = self.parse_expr(stream, pos);
            self.expect(stream, pos, TK_SEMI);
            self.node(N_RET, e, 0)
        };
        let rest = self.parse_stmts(stream, pos);
        self.node(N_SEQ, stmt, rest)
    }

    /// expr := term (('+'|'-') term)*
    fn parse_expr(&mut self, stream: Addr, pos: &mut u32) -> Addr {
        let mut left = self.parse_term(stream, pos);
        loop {
            match self.tok_kind(stream, *pos) {
                TK_PLUS => {
                    *pos += 1;
                    let right = self.parse_term(stream, pos);
                    left = self.node(N_ADD, left, right);
                }
                TK_MINUS => {
                    *pos += 1;
                    let right = self.parse_term(stream, pos);
                    left = self.node(N_SUB, left, right);
                }
                _ => return left,
            }
        }
    }

    /// term := atom ('*' atom)*
    fn parse_term(&mut self, stream: Addr, pos: &mut u32) -> Addr {
        let mut left = self.parse_atom(stream, pos);
        while self.tok_kind(stream, *pos) == TK_STAR {
            *pos += 1;
            let right = self.parse_atom(stream, pos);
            left = self.node(N_MUL, left, right);
        }
        left
    }

    fn parse_atom(&mut self, stream: Addr, pos: &mut u32) -> Addr {
        match self.tok_kind(stream, *pos) {
            TK_NUM => {
                let v = self.expect(stream, pos, TK_NUM);
                self.node(N_CONST, v, 0)
            }
            TK_IDENT => {
                let v = self.expect(stream, pos, TK_IDENT);
                self.node(N_VAR, v, 0)
            }
            TK_LPAREN => {
                *pos += 1;
                let e = self.parse_expr(stream, pos);
                self.expect(stream, pos, TK_RPAREN);
                e
            }
            k => panic!("parse error: unexpected token kind {k}"),
        }
    }

    /// Constant folding: rewrites `op(const, const)` nodes in place.
    fn fold(&mut self, n: Addr) {
        if n == 0 {
            return;
        }
        match self.kind(n) {
            N_ADD | N_SUB | N_MUL => {
                let (a, b) = (self.a(n), self.b(n));
                self.fold(a);
                self.fold(b);
                if self.kind(a) == N_CONST && self.kind(b) == N_CONST {
                    let (va, vb) = (self.a(a), self.a(b));
                    let v = match self.kind(n) {
                        N_ADD => va.wrapping_add(vb),
                        N_SUB => va.wrapping_sub(vb),
                        _ => va.wrapping_mul(vb),
                    };
                    self.bus.store_idx(n, 0, N_CONST);
                    self.bus.store_idx(n, 1, v);
                    self.bus.store_idx(n, 2, 0);
                    self.folded += 1;
                }
            }
            N_ASSIGN | N_RET => {
                let b = if self.kind(n) == N_ASSIGN {
                    self.b(n)
                } else {
                    self.a(n)
                };
                self.fold(b);
            }
            N_SEQ => {
                let (a, b) = (self.a(n), self.b(n));
                self.fold(a);
                self.fold(b);
            }
            _ => {}
        }
    }

    /// Dead-code elimination: truncates a statement sequence after the
    /// first `ret`.
    fn dce(&mut self, root: Addr) {
        let mut cur = root;
        while cur != 0 {
            let stmt = self.a(cur);
            let rest = self.b(cur);
            if self.kind(stmt) == N_RET && rest != 0 {
                // Count and drop the tail.
                let mut t = rest;
                while t != 0 {
                    self.dce_removed += 1;
                    t = self.b(t);
                }
                self.bus.store_idx(cur, 2, 0);
                return;
            }
            cur = rest;
        }
    }

    /// Emits stack-machine code: [op, operand] pairs. Returns (code
    /// base, instruction count).
    fn codegen(&mut self, root: Addr, cap: u32) -> (Addr, u32) {
        let code = self.bus.alloc(cap * 2);
        let mut n = 0u32;
        self.gen_stmts(root, code, &mut n);
        (code, n)
    }

    fn emit(&mut self, code: Addr, n: &mut u32, op: u32, operand: u32) {
        self.bus.store_idx(code, *n * 2, op);
        self.bus.store_idx(code, *n * 2 + 1, operand);
        *n += 1;
    }

    fn gen_stmts(&mut self, mut seq: Addr, code: Addr, n: &mut u32) {
        while seq != 0 {
            let stmt = self.a(seq);
            match self.kind(stmt) {
                N_ASSIGN => {
                    let var = self.a(stmt);
                    let e = self.b(stmt);
                    self.gen_expr(e, code, n);
                    self.emit(code, n, VM_STORE, var);
                }
                N_RET => {
                    let e = self.a(stmt);
                    self.gen_expr(e, code, n);
                    self.emit(code, n, VM_RET, 0);
                }
                k => panic!("bad statement kind {k}"),
            }
            seq = self.b(seq);
        }
    }

    fn gen_expr(&mut self, e: Addr, code: Addr, n: &mut u32) {
        match self.kind(e) {
            N_CONST => {
                let v = self.a(e);
                self.emit(code, n, VM_PUSH, v);
            }
            N_VAR => {
                let v = self.a(e);
                self.emit(code, n, VM_LOAD, v);
            }
            N_ADD | N_SUB | N_MUL => {
                let (a, b) = (self.a(e), self.b(e));
                self.gen_expr(a, code, n);
                self.gen_expr(b, code, n);
                let op = match self.kind(e) {
                    N_ADD => VM_ADD,
                    N_SUB => VM_SUB,
                    _ => VM_MUL,
                };
                self.emit(code, n, op, 0);
            }
            k => panic!("bad expression kind {k}"),
        }
    }

    /// Executes the generated code in a little stack VM whose stack and
    /// variables also live in traced memory. Returns the `ret` value.
    fn execute(&mut self, code: Addr, count: u32) -> u32 {
        let stack = self.bus.alloc(256);
        let vars = self.bus.alloc(NUM_VARS);
        for i in 0..NUM_VARS {
            self.bus.store_idx(vars, i, 0);
        }
        let mut sp = 0u32;
        for pc in 0..count {
            let op = self.bus.load_idx(code, pc * 2);
            let operand = self.bus.load_idx(code, pc * 2 + 1);
            match op {
                VM_PUSH => {
                    self.bus.store_idx(stack, sp, operand);
                    sp += 1;
                }
                VM_LOAD => {
                    let v = self.bus.load_idx(vars, operand);
                    self.bus.store_idx(stack, sp, v);
                    sp += 1;
                }
                VM_STORE => {
                    sp -= 1;
                    let v = self.bus.load_idx(stack, sp);
                    self.bus.store_idx(vars, operand, v);
                }
                VM_ADD | VM_SUB | VM_MUL => {
                    let b = self.bus.load_idx(stack, sp - 1);
                    let a = self.bus.load_idx(stack, sp - 2);
                    sp -= 2;
                    let v = match op {
                        VM_ADD => a.wrapping_add(b),
                        VM_SUB => a.wrapping_sub(b),
                        _ => a.wrapping_mul(b),
                    };
                    self.bus.store_idx(stack, sp, v);
                    sp += 1;
                }
                VM_RET => {
                    let v = self.bus.load_idx(stack, sp - 1);
                    self.bus.free(stack);
                    self.bus.free(vars);
                    return v;
                }
                other => panic!("bad vm opcode {other}"),
            }
        }
        panic!("generated code did not return");
    }

    /// Compiles a whole unit the way gcc runs its passes: lex+parse
    /// every function first, then fold all, then DCE all, then codegen
    /// all, then execute all — each pass re-traverses the unit's ASTs.
    /// Returns the executed results.
    fn compile_unit(&mut self, sources: &[String]) -> Vec<u32> {
        struct FnState {
            file: Addr,
            stream: Addr,
            ast: Addr,
        }
        let mut fns = Vec::with_capacity(sources.len());
        for source in sources {
            let bytes = source.as_bytes();
            let file_words = (bytes.len() as u32).div_ceil(4);
            let file = self.bus.alloc(file_words.max(1));
            self.bus.store_bytes(file, bytes, b' ');
            let (stream, _n) = self.lex(file, bytes.len() as u32);
            let ast = self.parse(stream);
            fns.push(FnState { file, stream, ast });
        }
        for f in &fns {
            self.fold(f.ast);
        }
        for f in &fns {
            self.dce(f.ast);
        }
        let mut results = Vec::with_capacity(fns.len());
        for (f, source) in fns.iter().zip(sources) {
            let (code, n) = self.codegen(f.ast, source.len() as u32 + 16);
            results.push(self.execute(code, n));
            self.bus.free(code);
        }
        for f in &fns {
            self.bus.free(f.file);
            self.bus.free(f.stream);
        }
        self.release_unit();
        results
    }

    /// Full pipeline over one source function; returns the executed
    /// result.
    #[cfg(test)]
    fn compile_and_run(&mut self, source: &str) -> u32 {
        let bytes = source.as_bytes();
        let file_words = (bytes.len() as u32).div_ceil(4);
        let file = self.bus.alloc(file_words.max(1));
        self.bus.store_bytes(file, bytes, b' ');
        let (stream, _ntok) = self.lex(file, bytes.len() as u32);
        let ast = self.parse(stream);
        self.fold(ast);
        self.dce(ast);
        let (code, n) = self.codegen(ast, bytes.len() as u32 + 16);
        let result = self.execute(code, n);
        self.bus.free(file);
        self.bus.free(stream);
        self.bus.free(code);
        self.release_unit();
        result
    }
}

/// The 126.gcc stand-in: compiles and runs a stream of generated
/// functions.
#[derive(Debug)]
pub struct GccLike {
    input: InputSize,
    seed: u64,
    /// (functions compiled, folds, mismatches) — mismatches must be 0.
    pub last_result: Option<(u32, u32, u32)>,
}

impl GccLike {
    /// Creates the workload.
    pub fn new(input: InputSize, seed: u64) -> Self {
        GccLike {
            input,
            seed,
            last_result: None,
        }
    }
}

impl Workload for GccLike {
    fn name(&self) -> &'static str {
        "gcc"
    }

    fn mirrors(&self) -> &'static str {
        "126.gcc"
    }

    fn run(&mut self, bus: &mut dyn Bus) {
        let (units, unit_fns, stmts) = match self.input {
            InputSize::Test => (8u32, 8u32, 10u32),
            InputSize::Train => (30, 8, 14),
            InputSize::Ref => (70, 8, 16),
        };
        let functions = units * unit_fns;
        let mut rng = Rng::new(self.seed ^ 0xc0ffee);
        let mut compiler = Compiler::new(bus);
        let mut mismatches = 0u32;
        for _ in 0..units {
            let mut sources = Vec::new();
            let mut expected = Vec::new();
            for _ in 0..unit_fns {
                let (src, e) = generate_function(&mut rng, stmts);
                sources.push(src);
                expected.push(e as u32);
            }
            let got = compiler.compile_unit(&sources);
            for (g, e) in got.iter().zip(&expected) {
                if g != e {
                    mismatches += 1;
                }
            }
        }
        let folded = compiler.folded;
        self.last_result = Some((functions, folded, mismatches));
        assert_eq!(mismatches, 0, "compiler pipeline produced wrong results");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fvl_mem::{CountingSink, NullSink, TracedMemory};

    fn compile_run(src: &str) -> u32 {
        let mut sink = NullSink;
        let mut mem = TracedMemory::new(&mut sink);
        let mut c = Compiler::new(&mut mem);
        c.compile_and_run(src)
    }

    #[test]
    fn constants_and_precedence() {
        assert_eq!(compile_run("ret 2 + 3 * 4 ;"), 14);
        assert_eq!(compile_run("ret (2 + 3) * 4 ;"), 20);
        assert_eq!(compile_run("ret 10 - 2 - 3 ;"), 5, "left associative");
    }

    #[test]
    fn variables_and_assignment() {
        assert_eq!(compile_run("let a = 6 ; let b = a * 7 ; ret b ;"), 42);
        assert_eq!(compile_run("let a = 1 ; let a = a + 1 ; ret a ;"), 2);
        assert_eq!(compile_run("ret h ;"), 0, "vars default to zero");
    }

    #[test]
    fn folding_reduces_constant_subtrees() {
        let mut sink = NullSink;
        let mut mem = TracedMemory::new(&mut sink);
        let mut c = Compiler::new(&mut mem);
        let r = c.compile_and_run("ret (1 + 2) * (3 + 4) ;");
        assert_eq!(r, 21);
        assert_eq!(c.folded, 3, "two adds and the mul fold");
    }

    #[test]
    fn dce_drops_statements_after_ret() {
        let mut sink = NullSink;
        let mut mem = TracedMemory::new(&mut sink);
        let mut c = Compiler::new(&mut mem);
        let r = c.compile_and_run("ret 5 ; let a = 9 ; let b = 9 ;");
        assert_eq!(r, 5);
        assert_eq!(c.dce_removed, 2);
    }

    #[test]
    fn generated_functions_match_host_oracle() {
        let mut rng = Rng::new(123);
        let mut sink = NullSink;
        let mut mem = TracedMemory::new(&mut sink);
        let mut c = Compiler::new(&mut mem);
        for _ in 0..30 {
            let (src, expected) = generate_function(&mut rng, 8);
            assert_eq!(c.compile_and_run(&src), expected as u32, "source:\n{src}");
        }
    }

    #[test]
    fn full_workload_has_zero_mismatches() {
        let mut sink = CountingSink::default();
        let mut w = GccLike::new(InputSize::Test, 2);
        {
            let mut mem = TracedMemory::new(&mut sink);
            w.run(&mut mem);
            mem.finish();
        }
        let (functions, folded, mismatches) = w.last_result.unwrap();
        assert_eq!(functions, 64, "8 units x 8 functions");
        assert_eq!(mismatches, 0);
        assert!(folded > 0, "some constants folded");
        assert!(sink.accesses() > 100_000);
    }
}
