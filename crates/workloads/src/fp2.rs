//! Additional SPECfp95-like workloads: multigrid (107.mgrid) and
//! particle-in-cell (146.wave5).

use crate::{InputSize, Rng, Workload};
use fvl_mem::{Addr, Bus, BusExt};

/// `MgridLike` — a two-level multigrid V-cycle solver, standing in for
/// 107.mgrid. Residual and correction grids are overwhelmingly exact
/// zeros away from the sources, with a coarse grid touched at a
/// different stride — mgrid's signature access pattern.
#[derive(Debug)]
pub struct MgridLike {
    input: InputSize,
    seed: u64,
    /// (initial residual norm, final residual norm) for convergence
    /// checks.
    pub last_residuals: Option<(f64, f64)>,
}

impl MgridLike {
    /// Creates the workload.
    pub fn new(input: InputSize, seed: u64) -> Self {
        MgridLike {
            input,
            seed,
            last_residuals: None,
        }
    }
}

struct Level {
    u: Addr, // solution
    r: Addr, // residual / right-hand side
    n: u32,
}

impl Level {
    fn new(bus: &mut dyn Bus, n: u32) -> Self {
        let cells = n * n;
        let u = bus.alloc(cells);
        let r = bus.alloc(cells);
        // calloc-style zero fill (also seeds the zero census).
        bus.fill(u, cells, 0);
        bus.fill(r, cells, 0);
        Level { u, r, n }
    }

    #[inline]
    fn at(&self, i: u32, j: u32) -> u32 {
        (i * self.n + j) * 4
    }

    fn get_u(&self, bus: &mut dyn Bus, i: u32, j: u32) -> f32 {
        bus.load_f32(self.u + self.at(i, j))
    }

    fn set_u(&self, bus: &mut dyn Bus, i: u32, j: u32, v: f32) {
        bus.store_f32(self.u + self.at(i, j), if v.abs() < 1e-4 { 0.0 } else { v });
    }

    fn get_r(&self, bus: &mut dyn Bus, i: u32, j: u32) -> f32 {
        bus.load_f32(self.r + self.at(i, j))
    }

    fn set_r(&self, bus: &mut dyn Bus, i: u32, j: u32, v: f32) {
        bus.store_f32(self.r + self.at(i, j), if v.abs() < 1e-4 { 0.0 } else { v });
    }

    /// One weighted-Jacobi smoothing sweep: u += w*(rhs - A u)/4.
    fn smooth(&self, bus: &mut dyn Bus, sweeps: u32) {
        for _ in 0..sweeps {
            for i in 1..self.n - 1 {
                for j in 1..self.n - 1 {
                    let nb = self.get_u(bus, i - 1, j)
                        + self.get_u(bus, i + 1, j)
                        + self.get_u(bus, i, j - 1)
                        + self.get_u(bus, i, j + 1);
                    let rhs = self.get_r(bus, i, j);
                    let u = self.get_u(bus, i, j);
                    let v = u + 0.8 * ((nb + rhs) / 4.0 - u);
                    self.set_u(bus, i, j, v);
                }
            }
        }
    }

    /// Residual norm: ||rhs - A u||_1 over the interior.
    fn residual_norm(&self, bus: &mut dyn Bus) -> f64 {
        let mut norm = 0.0f64;
        for i in 1..self.n - 1 {
            for j in 1..self.n - 1 {
                let nb = self.get_u(bus, i - 1, j)
                    + self.get_u(bus, i + 1, j)
                    + self.get_u(bus, i, j - 1)
                    + self.get_u(bus, i, j + 1);
                let res = self.get_r(bus, i, j) + nb - 4.0 * self.get_u(bus, i, j);
                norm += (res as f64).abs();
            }
        }
        norm
    }
}

impl Workload for MgridLike {
    fn name(&self) -> &'static str {
        "mgrid"
    }

    fn mirrors(&self) -> &'static str {
        "107.mgrid"
    }

    fn run(&mut self, bus: &mut dyn Bus) {
        let (n, cycles) = match self.input {
            InputSize::Test => (48u32, 6u32),
            InputSize::Train => (96, 8),
            InputSize::Ref => (160, 10),
        };
        let mut rng = Rng::new(self.seed ^ 0x316d);
        let fine = Level::new(bus, n);
        let coarse = Level::new(bus, n / 2);
        // A few point sources on the fine grid.
        for _ in 0..5 {
            let i = 2 + rng.below(n - 4);
            let j = 2 + rng.below(n - 4);
            fine.set_r(bus, i, j, 4.0);
        }
        let initial = fine.residual_norm(bus);
        for _ in 0..cycles {
            fine.smooth(bus, 2);
            // Restrict the fine residual to the coarse grid (injection).
            for i in 1..n / 2 - 1 {
                for j in 1..n / 2 - 1 {
                    let nb = fine.get_u(bus, 2 * i - 1, 2 * j)
                        + fine.get_u(bus, 2 * i + 1, 2 * j)
                        + fine.get_u(bus, 2 * i, 2 * j - 1)
                        + fine.get_u(bus, 2 * i, 2 * j + 1);
                    let res =
                        fine.get_r(bus, 2 * i, 2 * j) + nb - 4.0 * fine.get_u(bus, 2 * i, 2 * j);
                    coarse.set_r(bus, i, j, res);
                    coarse.set_u(bus, i, j, 0.0);
                }
            }
            coarse.smooth(bus, 6);
            // Prolong the coarse correction back (nearest neighbour).
            for i in 1..n - 1 {
                for j in 1..n - 1 {
                    let c = coarse.get_u(bus, (i / 2).min(n / 2 - 1), (j / 2).min(n / 2 - 1));
                    if c != 0.0 {
                        let u = fine.get_u(bus, i, j);
                        fine.set_u(bus, i, j, u + 0.5 * c);
                    }
                }
            }
            fine.smooth(bus, 2);
        }
        let final_norm = fine.residual_norm(bus);
        self.last_residuals = Some((initial, final_norm));
    }
}

/// `Wave5Like` — a particle-in-cell plasma step, standing in for
/// 146.wave5: particles deposit charge on a mostly-zero field grid, the
/// field relaxes, and the particles are pushed by the gradient.
#[derive(Debug)]
pub struct Wave5Like {
    input: InputSize,
    seed: u64,
    /// Number of particles still inside the box at the end.
    pub last_inside: Option<u32>,
}

impl Wave5Like {
    /// Creates the workload.
    pub fn new(input: InputSize, seed: u64) -> Self {
        Wave5Like {
            input,
            seed,
            last_inside: None,
        }
    }
}

impl Workload for Wave5Like {
    fn name(&self) -> &'static str {
        "wave5"
    }

    fn mirrors(&self) -> &'static str {
        "146.wave5"
    }

    fn run(&mut self, bus: &mut dyn Bus) {
        let (n, particles, steps) = match self.input {
            InputSize::Test => (64u32, 800u32, 10u32),
            InputSize::Train => (128, 3_000, 16),
            InputSize::Ref => (192, 8_000, 22),
        };
        let mut rng = Rng::new(self.seed ^ 0x3a5e);
        let cells = n * n;
        let charge = bus.alloc(cells);
        let field = bus.alloc(cells);
        bus.fill(charge, cells, 0);
        bus.fill(field, cells, 0);
        // Particle arrays: x, y, vx, vy (f32 each).
        let px = bus.alloc(particles);
        let py = bus.alloc(particles);
        let vx = bus.alloc(particles);
        let vy = bus.alloc(particles);
        for p in 0..particles {
            // A tight beam near the centre: most of the grid never sees
            // charge, so the far field stays exactly zero.
            let span = (n / 8) as f32;
            bus.store_f32(
                px + p * 4,
                (n / 2) as f32 + (rng.unit_f64() as f32 - 0.5) * span,
            );
            bus.store_f32(
                py + p * 4,
                (n / 2) as f32 + (rng.unit_f64() as f32 - 0.5) * span,
            );
            bus.store_f32(vx + p * 4, 0.0);
            bus.store_f32(vy + p * 4, 0.0);
        }
        let idx = |i: u32, j: u32| (i * n + j) * 4;
        let dt = 0.2f32;
        let mut inside = particles;
        for _ in 0..steps {
            // Deposit: zero the charge grid, then scatter particles.
            bus.fill(charge, cells, 0);
            for p in 0..particles {
                let x = bus.load_f32(px + p * 4);
                let y = bus.load_f32(py + p * 4);
                if x < 1.0 || y < 1.0 || x >= (n - 1) as f32 || y >= (n - 1) as f32 {
                    continue;
                }
                let (i, j) = (x as u32, y as u32);
                let c = bus.load_f32(charge + idx(i, j));
                bus.store_f32(charge + idx(i, j), c + 1.0);
            }
            // Field relaxation toward the charge density.
            for i in 1..n - 1 {
                for j in 1..n - 1 {
                    let nb = bus.load_f32(field + idx(i - 1, j))
                        + bus.load_f32(field + idx(i + 1, j))
                        + bus.load_f32(field + idx(i, j - 1))
                        + bus.load_f32(field + idx(i, j + 1));
                    let rho = bus.load_f32(charge + idx(i, j));
                    // Slightly lossy relaxation so the far field decays
                    // back to exact zero instead of filling the grid.
                    let v = 0.23 * nb + 0.25 * rho;
                    bus.store_f32(field + idx(i, j), if v.abs() < 1e-3 { 0.0 } else { v });
                }
            }
            // Push: accelerate along the negative field gradient.
            inside = 0;
            for p in 0..particles {
                let x = bus.load_f32(px + p * 4);
                let y = bus.load_f32(py + p * 4);
                if x < 1.0 || y < 1.0 || x >= (n - 1) as f32 || y >= (n - 1) as f32 {
                    continue;
                }
                inside += 1;
                let (i, j) = (x as u32, y as u32);
                let gx = bus.load_f32(field + idx(i + 1, j)) - bus.load_f32(field + idx(i - 1, j));
                let gy = bus.load_f32(field + idx(i, j + 1)) - bus.load_f32(field + idx(i, j - 1));
                let nvx = bus.load_f32(vx + p * 4) - dt * gx * 0.5;
                let nvy = bus.load_f32(vy + p * 4) - dt * gy * 0.5;
                bus.store_f32(vx + p * 4, nvx);
                bus.store_f32(vy + p * 4, nvy);
                bus.store_f32(px + p * 4, x + dt * nvx);
                bus.store_f32(py + p * 4, y + dt * nvy);
            }
        }
        self.last_inside = Some(inside);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fvl_mem::{CountingSink, NullSink, TracedMemory};

    #[test]
    fn mgrid_vcycles_reduce_the_residual() {
        let mut sink = NullSink;
        let mut w = MgridLike::new(InputSize::Test, 1);
        {
            let mut mem = TracedMemory::new(&mut sink);
            w.run(&mut mem);
        }
        let (initial, final_norm) = w.last_residuals.unwrap();
        assert!(initial > 0.0);
        assert!(
            final_norm < initial * 0.8,
            "multigrid converges: {initial} -> {final_norm}"
        );
    }

    #[test]
    fn wave5_keeps_most_particles_in_the_box() {
        let mut sink = NullSink;
        let mut w = Wave5Like::new(InputSize::Test, 2);
        {
            let mut mem = TracedMemory::new(&mut sink);
            w.run(&mut mem);
        }
        let inside = w.last_inside.unwrap();
        assert!(
            inside > 400,
            "most of the 800 particles stay inside: {inside}"
        );
    }

    #[test]
    fn both_produce_substantial_traffic_and_are_deterministic() {
        for name in ["mgrid", "wave5"] {
            let run = |seed| {
                let mut sink = CountingSink::default();
                let mut w = crate::by_name(name, InputSize::Test, seed).unwrap();
                {
                    let mut mem = TracedMemory::new(&mut sink);
                    w.run(&mut mem);
                    mem.finish();
                }
                sink.accesses()
            };
            assert!(run(1) > 50_000, "{name}");
            assert_eq!(run(3), run(3), "{name} deterministic");
        }
    }

    #[test]
    fn wave5_field_grid_is_zero_dominated() {
        let mut buf = fvl_mem::TraceBuffer::new();
        let mut w = Wave5Like::new(InputSize::Test, 5);
        {
            let mut mem = TracedMemory::new(&mut buf);
            w.run(&mut mem);
        }
        let trace = buf.into_trace();
        let zeros = trace.iter_accesses().filter(|a| a.value == 0).count();
        assert!(
            zeros * 2 > trace.accesses() as usize,
            "zeros dominate: {zeros}/{}",
            trace.accesses()
        );
    }
}
