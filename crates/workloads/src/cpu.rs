//! `M88ksimLike` — a toy RISC CPU simulator, standing in for
//! 124.m88ksim (the Motorola 88100 simulator).
//!
//! Like its namesake, this workload is a *simulator simulating a
//! program*: the architected state — register file, instruction and data
//! image, branch-predictor table, statistics — all lives in traced
//! memory, so every simulated instruction fetch, register read, and
//! memory operation is a real word access. The simulated program zeroes
//! and scans large sparse tables and sorts with small integers, so the
//! value stream is dominated by 0/1/2 and a small set of recurring
//! instruction encodings — the extreme frequent-value locality the paper
//! measures for m88ksim (99.3% constant addresses, >60% of accesses to
//! ten values).

use crate::{InputSize, Workload};
use fvl_mem::{Addr, Bus, BusExt};

/// Opcodes of the toy ISA.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
#[repr(u8)]
pub(crate) enum Op {
    /// rd = imm (zero-extended 16-bit)
    Li = 1,
    /// rd = rs + rt
    Add = 2,
    /// rd = rs - rt
    Sub = 3,
    /// rd = rs + imm (sign-extended)
    Addi = 4,
    /// rd = rs * rt (wrapping)
    Mul = 5,
    /// rd = rs & rt
    And = 6,
    /// rd = rs | rt
    Or = 7,
    /// rd = rs ^ rt
    Xor = 8,
    /// rd = (rs < rt) ? 1 : 0 (unsigned)
    Sltu = 9,
    /// rd = mem[rs + imm]
    Lw = 10,
    /// mem[rs + imm] = rd
    Sw = 11,
    /// if rd == rs goto imm (absolute instruction index)
    Beq = 12,
    /// if rd != rs goto imm
    Bne = 13,
    /// unconditional goto imm
    J = 14,
    /// stop
    Halt = 15,
}

impl Op {
    fn from_bits(bits: u32) -> Op {
        match bits {
            1 => Op::Li,
            2 => Op::Add,
            3 => Op::Sub,
            4 => Op::Addi,
            5 => Op::Mul,
            6 => Op::And,
            7 => Op::Or,
            8 => Op::Xor,
            9 => Op::Sltu,
            10 => Op::Lw,
            11 => Op::Sw,
            12 => Op::Beq,
            13 => Op::Bne,
            14 => Op::J,
            15 => Op::Halt,
            other => panic!("illegal opcode {other}"),
        }
    }
}

/// One instruction, encoded as `op(6) rd(5) rs(5) imm(16)`; register-
/// register forms carry `rt` in the low bits of `imm`.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub(crate) struct Instr {
    pub op: Op,
    pub rd: u8,
    pub rs: u8,
    pub imm: u16,
}

impl Instr {
    pub(crate) fn encode(self) -> u32 {
        ((self.op as u32) << 26)
            | ((self.rd as u32 & 31) << 21)
            | ((self.rs as u32 & 31) << 16)
            | self.imm as u32
    }

    pub(crate) fn decode(word: u32) -> Instr {
        Instr {
            op: Op::from_bits(word >> 26),
            rd: ((word >> 21) & 31) as u8,
            rs: ((word >> 16) & 31) as u8,
            imm: (word & 0xffff) as u16,
        }
    }
}

// Assembler helpers: register-register ops put rt in imm.
fn r3(op: Op, rd: u8, rs: u8, rt: u8) -> Instr {
    Instr {
        op,
        rd,
        rs,
        imm: rt as u16,
    }
}

fn ri(op: Op, rd: u8, rs: u8, imm: u16) -> Instr {
    Instr { op, rd, rs, imm }
}

/// The simulated machine. Architected state lives in bus memory.
pub(crate) struct Machine<'b> {
    bus: &'b mut dyn Bus,
    /// 32-word register file (r0 hardwired to zero).
    regs: Addr,
    /// Instruction memory (word-indexed).
    imem: Addr,
    /// Data memory image (word-indexed).
    dmem: Addr,
    dmem_words: u32,
    /// 2-bit branch predictor counters.
    bp: Addr,
    bp_entries: u32,
    pc: u32,
    pub cycles: u64,
    pub bp_hits: u64,
    pub bp_misses: u64,
}

impl<'b> Machine<'b> {
    pub(crate) fn new(
        bus: &'b mut dyn Bus,
        program: &[Instr],
        dmem_words: u32,
        bp_entries: u32,
    ) -> Self {
        let regs = bus.global(32);
        let imem = bus.global(program.len() as u32);
        let bp = bus.global(bp_entries);
        let dmem = bus.global(dmem_words);
        for i in 0..32 {
            bus.store_idx(regs, i, 0);
        }
        for (i, instr) in program.iter().enumerate() {
            bus.store_idx(imem, i as u32, instr.encode());
        }
        Machine {
            bus,
            regs,
            imem,
            dmem,
            dmem_words,
            bp,
            bp_entries,
            pc: 0,
            cycles: 0,
            bp_hits: 0,
            bp_misses: 0,
        }
    }

    fn reg(&mut self, r: u8) -> u32 {
        self.bus.load_idx(self.regs, r as u32)
    }

    fn set_reg(&mut self, r: u8, v: u32) {
        // r0 is hardwired to zero but the write port still fires, as in
        // a uniform datapath.
        self.bus
            .store_idx(self.regs, r as u32, if r == 0 { 0 } else { v });
    }

    fn mem_addr(&self, word_index: u32) -> Addr {
        assert!(
            word_index < self.dmem_words,
            "simulated access out of image"
        );
        self.dmem + word_index * 4
    }

    /// Two-bit saturating counter branch predictor; every branch reads
    /// and rewrites its counter (values 0..=3 — all frequent).
    fn predict_and_train(&mut self, taken: bool) {
        let slot = self.bp + (self.pc % self.bp_entries) * 4;
        let counter = self.bus.load(slot);
        let predicted = counter >= 2;
        if predicted == taken {
            self.bp_hits += 1;
        } else {
            self.bp_misses += 1;
        }
        let next = match (counter, taken) {
            (3, true) => 3,
            (c, true) => c + 1,
            (0, false) => 0,
            (c, false) => c - 1,
        };
        self.bus.store(slot, next);
    }

    /// Runs until HALT or the cycle budget is exhausted. Returns whether
    /// the program halted by itself.
    pub(crate) fn run(&mut self, max_cycles: u64) -> bool {
        while self.cycles < max_cycles {
            self.cycles += 1;
            let word = self.bus.load_idx(self.imem, self.pc);
            let instr = Instr::decode(word);
            let mut next_pc = self.pc + 1;
            match instr.op {
                Op::Li => self.set_reg(instr.rd, instr.imm as u32),
                Op::Add | Op::Sub | Op::Mul | Op::And | Op::Or | Op::Xor | Op::Sltu => {
                    let a = self.reg(instr.rs);
                    let b = self.reg((instr.imm & 31) as u8);
                    let v = match instr.op {
                        Op::Add => a.wrapping_add(b),
                        Op::Sub => a.wrapping_sub(b),
                        Op::Mul => a.wrapping_mul(b),
                        Op::And => a & b,
                        Op::Or => a | b,
                        Op::Xor => a ^ b,
                        Op::Sltu => (a < b) as u32,
                        _ => unreachable!(),
                    };
                    self.set_reg(instr.rd, v);
                }
                Op::Addi => {
                    let a = self.reg(instr.rs);
                    self.set_reg(instr.rd, a.wrapping_add(instr.imm as i16 as i32 as u32));
                }
                Op::Lw => {
                    let base = self.reg(instr.rs);
                    let addr = self.mem_addr(base.wrapping_add(instr.imm as u32));
                    let v = self.bus.load(addr);
                    self.set_reg(instr.rd, v);
                }
                Op::Sw => {
                    let base = self.reg(instr.rs);
                    let addr = self.mem_addr(base.wrapping_add(instr.imm as u32));
                    let v = self.reg(instr.rd);
                    self.bus.store(addr, v);
                }
                Op::Beq | Op::Bne => {
                    let a = self.reg(instr.rd);
                    let b = self.reg(instr.rs);
                    let taken = if instr.op == Op::Beq { a == b } else { a != b };
                    self.predict_and_train(taken);
                    if taken {
                        next_pc = instr.imm as u32;
                    }
                }
                Op::J => next_pc = instr.imm as u32,
                Op::Halt => return true,
            }
            self.pc = next_pc;
        }
        false
    }

    /// Peeks at a simulated data word (for result verification).
    pub(crate) fn peek(&mut self, word_index: u32) -> u32 {
        let addr = self.mem_addr(word_index);
        self.bus.load(addr)
    }
}

/// Builds the benchmark program the simulated CPU executes:
///
/// 1. memset a large sparse region to zero;
/// 2. fill a table with LCG values and insertion-sort it;
/// 3. plant sentinels in the sparse region and scan it, counting hits;
/// 4. loop for `reps` rounds.
///
/// Layout (word indices): `[0..8)` results, `[8..8+table)` sort table,
/// `[sparse_base..sparse_base+sparse)` sparse region.
fn benchmark_program(
    table: u16,
    sparse_base: u16,
    sparse: u16,
    reps: u16,
    seed: u16,
) -> Vec<Instr> {
    use Op::*;
    let mut p: Vec<Instr> = Vec::new();
    // r1 = reps, r2 = i, r3 = j, r4..r7 scratch, r8 = table base,
    // r9 = sparse base, r10 = LCG state, r11 = hits, r12 = checksum.
    p.push(ri(Li, 1, 0, reps));
    p.push(ri(Li, 10, 0, seed | 1));
    let outer_top = p.len() as u16;
    // --- memset sparse region ---
    p.push(ri(Li, 9, 0, sparse_base));
    p.push(ri(Li, 2, 0, 0));
    p.push(ri(Li, 5, 0, sparse));
    let ms_top = p.len() as u16;
    p.push(r3(Add, 4, 9, 2)); // r4 = base + i
    p.push(ri(Sw, 0, 4, 0)); // mem[r4] = 0
    p.push(ri(Addi, 2, 2, 1));
    p.push(r3(Sltu, 6, 2, 5));
    p.push(ri(Bne, 6, 0, ms_top)); // while i < sparse
                                   // --- fill table with LCG values ---
    p.push(ri(Li, 8, 0, 8));
    p.push(ri(Li, 2, 0, 0));
    p.push(ri(Li, 5, 0, table));
    let fill_top = p.len() as u16;
    p.push(ri(Li, 6, 0, 25173 & 0x7fff));
    p.push(r3(Mul, 10, 10, 6));
    p.push(ri(Addi, 10, 10, 13849));
    p.push(ri(Li, 6, 0, 0x7fff));
    p.push(r3(And, 7, 10, 6)); // r7 = value in [0, 32767]
    p.push(r3(Add, 4, 8, 2));
    p.push(ri(Sw, 7, 4, 0)); // table[i] = r7
    p.push(ri(Addi, 2, 2, 1));
    p.push(ri(Li, 5, 0, table));
    p.push(r3(Sltu, 6, 2, 5));
    p.push(ri(Bne, 6, 0, fill_top));
    // --- insertion sort table[0..table) ---
    p.push(ri(Li, 2, 0, 1)); // i = 1
    let sort_outer = p.len() as u16;
    p.push(r3(Add, 4, 8, 2));
    p.push(ri(Lw, 7, 4, 0)); // key = table[i]
    p.push(r3(Or, 3, 2, 0)); // j = i
    let sort_inner = p.len() as u16;
    p.push(ri(Beq, 3, 0, 0)); // j == 0 -> inner_done (patched)
    let patch_a = p.len() - 1;
    p.push(ri(Addi, 4, 3, 0xffff)); // r4 = j - 1
    p.push(r3(Add, 4, 8, 4));
    p.push(ri(Lw, 5, 4, 0)); // r5 = table[j-1]
    p.push(r3(Sltu, 6, 7, 5)); // key < table[j-1]?
    p.push(ri(Beq, 6, 0, 0)); // not less -> inner_done (patched)
    let patch_b = p.len() - 1;
    p.push(r3(Add, 6, 8, 3));
    p.push(ri(Sw, 5, 6, 0)); // table[j] = table[j-1]
    p.push(ri(Addi, 3, 3, 0xffff)); // j -= 1
    p.push(ri(J, 0, 0, sort_inner));
    let inner_done = p.len() as u16;
    p[patch_a].imm = inner_done;
    p[patch_b].imm = inner_done;
    p.push(r3(Add, 4, 8, 3));
    p.push(ri(Sw, 7, 4, 0)); // table[j] = key
    p.push(ri(Addi, 2, 2, 1));
    p.push(ri(Li, 5, 0, table));
    p.push(r3(Sltu, 6, 2, 5));
    p.push(ri(Bne, 6, 0, sort_outer));
    // --- plant sentinels then scan the sparse region ---
    p.push(ri(Li, 11, 0, 0)); // hits
    p.push(ri(Li, 12, 0, 0)); // checksum
    p.push(ri(Li, 2, 0, 0));
    let plant_top = p.len() as u16;
    p.push(r3(Add, 4, 9, 2));
    p.push(ri(Li, 6, 0, 1));
    p.push(ri(Sw, 6, 4, 0));
    p.push(ri(Addi, 2, 2, 1021));
    p.push(ri(Li, 5, 0, sparse));
    p.push(r3(Sltu, 6, 2, 5));
    p.push(ri(Bne, 6, 0, plant_top));
    p.push(ri(Li, 2, 0, 0));
    let scan_top = p.len() as u16;
    p.push(r3(Add, 4, 9, 2));
    p.push(ri(Lw, 7, 4, 0));
    p.push(ri(Beq, 7, 0, 0)); // zero -> skip (patched)
    let patch_c = p.len() - 1;
    p.push(ri(Addi, 11, 11, 1));
    p.push(r3(Add, 12, 12, 7));
    let skip = p.len() as u16;
    p[patch_c].imm = skip;
    p.push(ri(Addi, 2, 2, 1));
    p.push(ri(Li, 5, 0, sparse));
    p.push(r3(Sltu, 6, 2, 5));
    p.push(ri(Bne, 6, 0, scan_top));
    // --- store results, decrement outer counter ---
    p.push(ri(Li, 4, 0, 0));
    p.push(ri(Sw, 11, 4, 0)); // mem[0] = hits
    p.push(ri(Sw, 12, 4, 1)); // mem[1] = checksum
    p.push(ri(Lw, 5, 4, 2));
    p.push(ri(Addi, 5, 5, 1));
    p.push(ri(Sw, 5, 4, 2)); // mem[2] = completed rounds
    p.push(ri(Addi, 1, 1, 0xffff)); // reps -= 1
    p.push(ri(Bne, 1, 0, outer_top));
    p.push(ri(Halt, 0, 0, 0));
    p
}

/// The 124.m88ksim stand-in.
#[derive(Debug)]
pub struct M88ksimLike {
    input: InputSize,
    seed: u64,
    /// (sentinel hits, completed rounds) read back from the simulated
    /// image after the run.
    pub last_result: Option<(u32, u32)>,
}

impl M88ksimLike {
    /// Creates the workload.
    pub fn new(input: InputSize, seed: u64) -> Self {
        M88ksimLike {
            input,
            seed,
            last_result: None,
        }
    }
}

impl Workload for M88ksimLike {
    fn name(&self) -> &'static str {
        "m88ksim"
    }

    fn mirrors(&self) -> &'static str {
        "124.m88ksim"
    }

    fn run(&mut self, bus: &mut dyn Bus) {
        let (table, sparse, reps, budget) = match self.input {
            InputSize::Test => (96u16, 6_000u16, 2u16, 3_000_000u64),
            InputSize::Train => (160, 14_000, 4, 12_000_000),
            InputSize::Ref => (224, 24_000, 4, 30_000_000),
        };
        let sparse_base = 8 + table;
        let seed = (self.seed % 0x7ff0) as u16;
        let program = benchmark_program(table, sparse_base, sparse, reps, seed);
        let dmem_words = sparse_base as u32 + sparse as u32;
        let mut machine = Machine::new(bus, &program, dmem_words, 2048);
        let halted = machine.run(budget);
        let hits = machine.peek(0);
        let rounds = machine.peek(2);
        assert!(halted, "simulated program exceeded its cycle budget");
        self.last_result = Some((hits, rounds));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fvl_mem::{CountingSink, NullSink, TracedMemory};

    #[test]
    fn instr_encode_decode_round_trip() {
        for op in [
            Op::Li,
            Op::Add,
            Op::Sub,
            Op::Addi,
            Op::Mul,
            Op::And,
            Op::Or,
            Op::Xor,
            Op::Sltu,
            Op::Lw,
            Op::Sw,
            Op::Beq,
            Op::Bne,
            Op::J,
            Op::Halt,
        ] {
            let i = Instr {
                op,
                rd: 17,
                rs: 5,
                imm: 0xabc,
            };
            assert_eq!(Instr::decode(i.encode()), i);
        }
    }

    fn run_program(program: &[Instr], dmem: u32) -> Vec<u32> {
        let mut sink = NullSink;
        let mut mem = TracedMemory::new(&mut sink);
        let mut m = Machine::new(&mut mem, program, dmem, 64);
        assert!(m.run(1_000_000), "program did not halt");
        (0..8).map(|i| m.peek(i)).collect()
    }

    #[test]
    fn machine_computes_sum_1_to_10() {
        use Op::*;
        let p = vec![
            ri(Li, 2, 0, 1),
            ri(Li, 3, 0, 0),
            ri(Li, 5, 0, 11),
            r3(Add, 3, 3, 2), // 3: acc += i
            ri(Addi, 2, 2, 1),
            r3(Sltu, 6, 2, 5),
            ri(Bne, 6, 0, 3),
            ri(Li, 4, 0, 0),
            ri(Sw, 3, 4, 0),
            ri(Halt, 0, 0, 0),
        ];
        assert_eq!(run_program(&p, 16)[0], 55);
    }

    #[test]
    fn r0_is_hardwired_zero() {
        use Op::*;
        let p = vec![
            ri(Li, 0, 0, 999),
            ri(Li, 4, 0, 0),
            ri(Sw, 0, 4, 0),
            ri(Halt, 0, 0, 0),
        ];
        assert_eq!(run_program(&p, 8)[0], 0);
    }

    #[test]
    fn benchmark_program_sorts_and_counts() {
        let table = 32u16;
        let sparse_base = 8 + table;
        let sparse = 4000u16;
        let p = benchmark_program(table, sparse_base, sparse, 1, 7);
        let mut sink = NullSink;
        let mut mem = TracedMemory::new(&mut sink);
        let mut m = Machine::new(&mut mem, &p, sparse_base as u32 + sparse as u32, 64);
        assert!(m.run(10_000_000), "did not halt");
        // Sentinels every 1021 words: ceil(4000/1021) = 4 hits.
        assert_eq!(m.peek(0), 4, "sentinel hits");
        assert_eq!(m.peek(1), 4, "checksum of four 1s");
        assert_eq!(m.peek(2), 1, "one round");
        // The table is sorted ascending.
        let vals: Vec<u32> = (8..8 + table as u32).map(|i| m.peek(i)).collect();
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        assert_eq!(vals, sorted, "insertion sort result");
        assert!(vals.iter().any(|&v| v != 0), "table was filled");
    }

    #[test]
    fn branch_predictor_learns_loops() {
        let mut sink = NullSink;
        let mut mem = TracedMemory::new(&mut sink);
        let program = benchmark_program(64, 72, 3000, 2, 3);
        let mut m = Machine::new(&mut mem, &program, 72 + 3000, 2048);
        assert!(m.run(10_000_000));
        let total = m.bp_hits + m.bp_misses;
        assert!(total > 1000);
        assert!(
            m.bp_hits as f64 / total as f64 > 0.85,
            "2-bit counters should predict loop branches well: {}/{}",
            m.bp_hits,
            total
        );
    }

    #[test]
    fn full_workload_runs_to_completion() {
        let mut sink = CountingSink::default();
        let mut w = M88ksimLike::new(InputSize::Test, 5);
        {
            let mut mem = TracedMemory::new(&mut sink);
            w.run(&mut mem);
            mem.finish();
        }
        let (hits, rounds) = w.last_result.unwrap();
        assert_eq!(rounds, 2);
        assert_eq!(hits, 6, "ceil(6000/1021) = 6 sentinels");
        assert!(sink.accesses() > 100_000);
    }
}
