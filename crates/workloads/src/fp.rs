//! SPECfp95-like stencil kernels (Figure 2's study).
//!
//! Four numeric programs whose fields live in traced memory as IEEE-754
//! bit patterns: mesh relaxation (tomcatv), shallow water (swim), a
//! sparse advection grid (hydro2d), and 3-D SSOR sweeps (applu).
//! Fortran-style numeric programs are full of exact zeros (halos, still
//! fields, sparse regions) and repeated constants, which is why the
//! paper finds high frequent value locality in SPECfp95 too.

use crate::{InputSize, Rng, Workload};
use fvl_mem::{Addr, Bus, BusExt};

/// A bus-backed 2-D grid of `f32` values.
struct Grid2<'a> {
    base: Addr,
    cols: u32,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl Grid2<'_> {
    fn new(bus: &mut dyn Bus, rows: u32, cols: u32, init: f32) -> Self {
        let base = bus.alloc(rows * cols);
        let g = Grid2 {
            base,
            cols,
            _marker: std::marker::PhantomData,
        };
        for r in 0..rows {
            for c in 0..cols {
                g.set(bus, r, c, init);
            }
        }
        g
    }

    #[inline]
    fn get(&self, bus: &mut dyn Bus, r: u32, c: u32) -> f32 {
        bus.load_f32(self.base + (r * self.cols + c) * 4)
    }

    #[inline]
    fn set(&self, bus: &mut dyn Bus, r: u32, c: u32, v: f32) {
        bus.store_f32(self.base + (r * self.cols + c) * 4, v);
    }
}

fn sizes(input: InputSize) -> (u32, u32) {
    // (grid edge, iterations)
    match input {
        InputSize::Test => (48, 12),
        InputSize::Train => (96, 22),
        InputSize::Ref => (160, 30),
    }
}

/// `TomcatvLike` — Jacobi mesh relaxation with fixed boundaries,
/// standing in for 101.tomcatv.
#[derive(Debug)]
pub struct TomcatvLike {
    input: InputSize,
    seed: u64,
    /// Final residual (max update magnitude), for convergence checks.
    pub last_residual: Option<f32>,
}

impl TomcatvLike {
    /// Creates the workload.
    pub fn new(input: InputSize, seed: u64) -> Self {
        TomcatvLike {
            input,
            seed,
            last_residual: None,
        }
    }
}

impl Workload for TomcatvLike {
    fn name(&self) -> &'static str {
        "tomcatv"
    }

    fn mirrors(&self) -> &'static str {
        "101.tomcatv"
    }

    fn run(&mut self, bus: &mut dyn Bus) {
        let (n, iters) = sizes(self.input);
        let mut rng = Rng::new(self.seed ^ 0x70);
        let cur = Grid2::new(bus, n, n, 0.0);
        let next = Grid2::new(bus, n, n, 0.0);
        // Hot boundary on one edge, a few random heat sources.
        for c in 0..n {
            cur.set(bus, 0, c, 100.0);
            next.set(bus, 0, c, 100.0);
        }
        for _ in 0..4 {
            let r = 1 + rng.below(n - 2);
            let c = 1 + rng.below(n - 2);
            cur.set(bus, r, c, 50.0);
        }
        let mut residual = 0.0f32;
        for it in 0..iters {
            residual = 0.0;
            for r in 1..n - 1 {
                for c in 1..n - 1 {
                    let v = 0.25
                        * (cur.get(bus, r - 1, c)
                            + cur.get(bus, r + 1, c)
                            + cur.get(bus, r, c - 1)
                            + cur.get(bus, r, c + 1));
                    // Snap tiny values to exact zero — Fortran codes do
                    // the equivalent via underflow-to-zero regions.
                    let v = if v.abs() < 1e-3 { 0.0 } else { v };
                    residual = residual.max((v - cur.get(bus, r, c)).abs());
                    next.set(bus, r, c, v);
                }
            }
            // Swap roles by copying back (double buffering through
            // memory, as the Fortran original does).
            for r in 1..n - 1 {
                for c in 1..n - 1 {
                    let v = next.get(bus, r, c);
                    cur.set(bus, r, c, v);
                }
            }
            let _ = it;
        }
        self.last_residual = Some(residual);
    }
}

/// `SwimLike` — shallow-water equations on a staggered grid, standing in
/// for 102.swim.
#[derive(Debug)]
pub struct SwimLike {
    input: InputSize,
    seed: u64,
    /// Total water volume at the end (conservation check).
    pub last_volume: Option<f64>,
}

impl SwimLike {
    /// Creates the workload.
    pub fn new(input: InputSize, seed: u64) -> Self {
        SwimLike {
            input,
            seed,
            last_volume: None,
        }
    }
}

impl Workload for SwimLike {
    fn name(&self) -> &'static str {
        "swim"
    }

    fn mirrors(&self) -> &'static str {
        "102.swim"
    }

    fn run(&mut self, bus: &mut dyn Bus) {
        let (n, iters) = sizes(self.input);
        let mut rng = Rng::new(self.seed ^ 0x5111);
        let u = Grid2::new(bus, n, n, 0.0); // velocities start still
        let v = Grid2::new(bus, n, n, 0.0);
        let h = Grid2::new(bus, n, n, 1.0); // uniform depth
                                            // A droplet disturbance.
        let (dr, dc) = (1 + rng.below(n - 2), 1 + rng.below(n - 2));
        h.set(bus, dr, dc, 1.5);
        let dt = 0.05f32;
        let g = 9.8f32;
        for _ in 0..iters {
            // Momentum update from height gradients.
            for r in 1..n - 1 {
                for c in 1..n - 1 {
                    let du = -g * dt * (h.get(bus, r, c + 1) - h.get(bus, r, c - 1)) * 0.5;
                    let dv = -g * dt * (h.get(bus, r + 1, c) - h.get(bus, r - 1, c)) * 0.5;
                    let nu = u.get(bus, r, c) + du;
                    let nv = v.get(bus, r, c) + dv;
                    u.set(bus, r, c, if nu.abs() < 1e-4 { 0.0 } else { nu });
                    v.set(bus, r, c, if nv.abs() < 1e-4 { 0.0 } else { nv });
                }
            }
            // Continuity: height update from velocity divergence.
            for r in 1..n - 1 {
                for c in 1..n - 1 {
                    let div = (u.get(bus, r, c + 1) - u.get(bus, r, c - 1) + v.get(bus, r + 1, c)
                        - v.get(bus, r - 1, c))
                        * 0.5;
                    let nh = h.get(bus, r, c) - dt * div;
                    h.set(bus, r, c, nh);
                }
            }
        }
        let mut volume = 0.0f64;
        for r in 0..n {
            for c in 0..n {
                volume += h.get(bus, r, c) as f64;
            }
        }
        self.last_volume = Some(volume);
    }
}

/// `Hydro2dLike` — advection of a sparse density field, standing in for
/// 104.hydro2d. Over 90% of the grid stays exactly zero.
#[derive(Debug)]
pub struct Hydro2dLike {
    input: InputSize,
    seed: u64,
    /// Total mass at the end (conservation check).
    pub last_mass: Option<f64>,
}

impl Hydro2dLike {
    /// Creates the workload.
    pub fn new(input: InputSize, seed: u64) -> Self {
        Hydro2dLike {
            input,
            seed,
            last_mass: None,
        }
    }
}

impl Workload for Hydro2dLike {
    fn name(&self) -> &'static str {
        "hydro2d"
    }

    fn mirrors(&self) -> &'static str {
        "104.hydro2d"
    }

    fn run(&mut self, bus: &mut dyn Bus) {
        let (n, iters) = sizes(self.input);
        let mut rng = Rng::new(self.seed ^ 0x42d);
        let rho = Grid2::new(bus, n, n, 0.0);
        let next = Grid2::new(bus, n, n, 0.0);
        // A few dense blobs in a sea of zeros.
        for _ in 0..6 {
            let r = 2 + rng.below(n - 4);
            let c = 2 + rng.below(n - 4);
            rho.set(bus, r, c, 8.0);
        }
        for _ in 0..iters {
            // Upwind advection diagonally with slight diffusion; mass
            // moves, zeros stay zero.
            for r in 1..n - 1 {
                for c in 1..n - 1 {
                    let stay = rho.get(bus, r, c) * 0.6;
                    let from_up = rho.get(bus, r - 1, c) * 0.2;
                    let from_left = rho.get(bus, r, c - 1) * 0.2;
                    let v = stay + from_up + from_left;
                    next.set(bus, r, c, if v < 1e-4 { 0.0 } else { v });
                }
            }
            for r in 1..n - 1 {
                for c in 1..n - 1 {
                    let v = next.get(bus, r, c);
                    rho.set(bus, r, c, v);
                }
            }
        }
        let mut mass = 0.0f64;
        for r in 0..n {
            for c in 0..n {
                mass += rho.get(bus, r, c) as f64;
            }
        }
        self.last_mass = Some(mass);
    }
}

/// `ApplULike` — SSOR-style sweeps over a 3-D grid with a zero halo,
/// standing in for 110.applu.
#[derive(Debug)]
pub struct ApplULike {
    input: InputSize,
    seed: u64,
    /// Interior norm after the sweeps.
    pub last_norm: Option<f64>,
}

impl ApplULike {
    /// Creates the workload.
    pub fn new(input: InputSize, seed: u64) -> Self {
        ApplULike {
            input,
            seed,
            last_norm: None,
        }
    }
}

impl Workload for ApplULike {
    fn name(&self) -> &'static str {
        "applu"
    }

    fn mirrors(&self) -> &'static str {
        "110.applu"
    }

    fn run(&mut self, bus: &mut dyn Bus) {
        let (edge2d, iters2d) = sizes(self.input);
        // Scale a 3-D cube to roughly the same work.
        let n = (edge2d / 4).max(10);
        let iters = iters2d / 2 + 2;
        let mut rng = Rng::new(self.seed ^ 0xa9910);
        let words = n * n * n;
        let base = bus.alloc(words);
        let idx = |x: u32, y: u32, z: u32| (x * n + y) * n + z;
        // Zero halo and a mostly-zero interior with a few unit sources,
        // like the benchmark's initialisation decks.
        for x in 0..n {
            for y in 0..n {
                for z in 0..n {
                    bus.store_f32(base + idx(x, y, z) * 4, 0.0);
                }
            }
        }
        for _ in 0..8 {
            let r = || 0;
            let _ = r;
            let (x, y, z) = (
                1 + rng.below(n - 2),
                1 + rng.below(n - 2),
                1 + rng.below(n - 2),
            );
            bus.store_f32(base + idx(x, y, z) * 4, 1.0);
        }
        let omega = 1.2f32;
        for _ in 0..iters {
            // Forward sweep (Gauss-Seidel in place, lexicographic).
            for x in 1..n - 1 {
                for y in 1..n - 1 {
                    for z in 1..n - 1 {
                        let nb = bus.load_f32(base + idx(x - 1, y, z) * 4)
                            + bus.load_f32(base + idx(x + 1, y, z) * 4)
                            + bus.load_f32(base + idx(x, y - 1, z) * 4)
                            + bus.load_f32(base + idx(x, y + 1, z) * 4)
                            + bus.load_f32(base + idx(x, y, z - 1) * 4)
                            + bus.load_f32(base + idx(x, y, z + 1) * 4);
                        let old = bus.load_f32(base + idx(x, y, z) * 4);
                        let v = old + omega * (nb / 6.0 - old);
                        let v = if v.abs() < 1e-3 { 0.0 } else { v };
                        bus.store_f32(base + idx(x, y, z) * 4, v);
                    }
                }
            }
        }
        let mut norm = 0.0f64;
        for x in 1..n - 1 {
            for y in 1..n - 1 {
                for z in 1..n - 1 {
                    let v = bus.load_f32(base + idx(x, y, z) * 4) as f64;
                    norm += v * v;
                }
            }
        }
        self.last_norm = Some(norm.sqrt());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fvl_mem::{CountingSink, NullSink, TracedMemory};

    #[test]
    fn tomcatv_relaxation_converges() {
        let mut sink = NullSink;
        let mut w = TomcatvLike::new(InputSize::Test, 1);
        {
            let mut mem = TracedMemory::new(&mut sink);
            w.run(&mut mem);
        }
        let residual = w.last_residual.unwrap();
        assert!(residual.is_finite());
        assert!(residual < 10.0, "heat diffuses smoothly: {residual}");
    }

    #[test]
    fn swim_keeps_volume_roughly_conserved() {
        let mut sink = NullSink;
        let mut w = SwimLike::new(InputSize::Test, 2);
        {
            let mut mem = TracedMemory::new(&mut sink);
            w.run(&mut mem);
        }
        let volume = w.last_volume.unwrap();
        let expected = 48.0 * 48.0; // n*n cells of depth ~1 + droplet
        assert!(
            (volume - expected).abs() / expected < 0.05,
            "volume {volume} vs {expected}"
        );
    }

    #[test]
    fn hydro2d_conserves_interior_mass_flow() {
        let mut sink = NullSink;
        let mut w = Hydro2dLike::new(InputSize::Test, 3);
        {
            let mut mem = TracedMemory::new(&mut sink);
            w.run(&mut mem);
        }
        let mass = w.last_mass.unwrap();
        // 6 blobs of 8.0 advect with stay+up+left = 1.0 weights; some
        // mass exits through the clamped boundary and the snap-to-zero.
        assert!(mass > 10.0 && mass <= 48.0 + 1.0, "mass {mass}");
    }

    #[test]
    fn hydro2d_grid_stays_mostly_zero() {
        // The defining property for the locality study.
        let mut sink = fvl_mem::TraceBuffer::new();
        let mut w = Hydro2dLike::new(InputSize::Test, 3);
        {
            let mut mem = TracedMemory::new(&mut sink);
            w.run(&mut mem);
        }
        let trace = sink.into_trace();
        let zeros = trace.iter_accesses().filter(|a| a.value == 0).count();
        let total = trace.accesses() as usize;
        assert!(
            zeros * 10 > total * 7,
            "at least 70% zero accesses: {zeros}/{total}"
        );
    }

    #[test]
    fn applu_norm_is_finite_and_damped() {
        let mut sink = NullSink;
        let mut w = ApplULike::new(InputSize::Test, 4);
        {
            let mut mem = TracedMemory::new(&mut sink);
            w.run(&mut mem);
        }
        let norm = w.last_norm.unwrap();
        assert!(norm.is_finite() && norm > 0.0);
    }

    #[test]
    fn fp_workloads_produce_traffic() {
        for name in ["tomcatv", "swim", "hydro2d", "applu"] {
            let mut sink = CountingSink::default();
            let mut w = crate::by_name(name, InputSize::Test, 1).unwrap();
            {
                let mut mem = TracedMemory::new(&mut sink);
                w.run(&mut mem);
                mem.finish();
            }
            assert!(sink.accesses() > 20_000, "{name}: {}", sink.accesses());
        }
    }
}
