//! `GoLike` — alpha-beta game-tree search over a capture-Go board,
//! standing in for 099.go.
//!
//! The board (values 0/1/2), the flood-fill visited array, the move
//! scoring table, and the per-node board copies on the simulated stack
//! are all traced memory, so — like the real go program — the access
//! stream is saturated with the tiny board alphabet plus small counters,
//! while the search repeatedly copies and restores board state.

use crate::{InputSize, Rng, Workload};
use fvl_mem::{Addr, Bus, BusExt};

const EMPTY: u32 = 0;

/// The game: two players alternately place stones; a group with no
/// liberties is captured (removed). First to `capture_goal` captures (or
/// the move budget) ends the game. This is "atari go", a real teaching
/// variant — enough to exercise go's data structures honestly.
struct Game<'b> {
    bus: &'b mut dyn Bus,
    size: u32,
    /// Board: size*size words of {0,1,2}.
    board: Addr,
    /// Scratch visited array for liberty flood fill.
    visited: Addr,
    /// History heuristic table: one score per point.
    history: Addr,
    /// Transposition table: [key, depth, score, flag] per entry, mostly
    /// empty (zero) — the zero-rich big structure of real game engines.
    tt: Addr,
    tt_entries: u32,
    /// Zobrist-style hash key of the current position.
    key: u32,
    pub tt_hits: u64,
    captures: [u32; 2],
    nodes: u64,
}

impl<'b> Game<'b> {
    fn new(bus: &'b mut dyn Bus, size: u32, tt_entries: u32) -> Self {
        let cells = size * size;
        let board = bus.global(cells);
        let visited = bus.global(cells);
        let history = bus.global(cells);
        let tt = bus.global(tt_entries * 4);
        for i in 0..cells {
            bus.store_idx(board, i, EMPTY);
            bus.store_idx(visited, i, 0);
            bus.store_idx(history, i, 0);
        }
        // The transposition table is *not* initialised: fresh simulated
        // memory reads zero, exactly like a calloc'd table.
        Game {
            bus,
            size,
            board,
            visited,
            history,
            tt,
            tt_entries,
            key: 0x9e3779b9,
            tt_hits: 0,
            captures: [0, 0],
            nodes: 0,
        }
    }

    /// Incremental position key (order-dependent but adequate for a
    /// transposition cache).
    fn mix_key(&mut self, i: u32, player: u32) {
        self.key ^= (i.wrapping_add(1).wrapping_mul(0x85eb_ca6b)).rotate_left(player * 7 + 1);
    }

    /// Probes the transposition table; returns the stored score when the
    /// entry matches at sufficient depth.
    fn tt_probe(&mut self, depth: u32) -> Option<i32> {
        let slot = (self.key % self.tt_entries) * 4;
        let stored_key = self.bus.load_idx(self.tt, slot);
        if stored_key != self.key {
            return None;
        }
        let stored_depth = self.bus.load_idx(self.tt, slot + 1);
        let score = self.bus.load_idx(self.tt, slot + 2) as i32;
        let flag = self.bus.load_idx(self.tt, slot + 3);
        (flag == 1 && stored_depth >= depth).then(|| {
            self.tt_hits += 1;
            score
        })
    }

    fn tt_store(&mut self, depth: u32, score: i32) {
        let slot = (self.key % self.tt_entries) * 4;
        self.bus.store_idx(self.tt, slot, self.key);
        self.bus.store_idx(self.tt, slot + 1, depth);
        self.bus.store_idx(self.tt, slot + 2, score as u32);
        self.bus.store_idx(self.tt, slot + 3, 1);
    }

    #[inline]
    fn idx(&self, r: u32, c: u32) -> u32 {
        r * self.size + c
    }

    fn at(&mut self, i: u32) -> u32 {
        self.bus.load_idx(self.board, i)
    }

    fn set(&mut self, i: u32, v: u32) {
        self.bus.store_idx(self.board, i, v);
    }

    fn neighbors(&self, i: u32) -> impl Iterator<Item = u32> {
        let size = self.size;
        let r = i / size;
        let c = i % size;
        [
            (r > 0).then(|| i - size),
            (r + 1 < size).then(|| i + size),
            (c > 0).then(|| i - 1),
            (c + 1 < size).then(|| i + 1),
        ]
        .into_iter()
        .flatten()
    }

    /// Counts liberties of the group containing `start` via flood fill
    /// through the traced visited array. Returns (liberties, group size)
    /// and leaves the group's cells marked in `visited` with `stamp`.
    fn liberties(&mut self, start: u32, stamp: u32) -> (u32, u32) {
        let color = self.at(start);
        debug_assert_ne!(color, EMPTY);
        let mut stack = vec![start];
        self.bus.store_idx(self.visited, start, stamp);
        let mut libs = 0;
        let mut stones = 0;
        while let Some(i) = stack.pop() {
            stones += 1;
            for n in self.neighbors(i).collect::<Vec<_>>() {
                let v = self.at(n);
                if v == EMPTY {
                    // Liberty; count each empty point once per stamp by
                    // marking it too.
                    if self.bus.load_idx(self.visited, n) != stamp {
                        self.bus.store_idx(self.visited, n, stamp);
                        libs += 1;
                    }
                } else if v == color && self.bus.load_idx(self.visited, n) != stamp {
                    self.bus.store_idx(self.visited, n, stamp);
                    stack.push(n);
                }
            }
        }
        (libs, stones)
    }

    /// Removes the group at `start`; returns stones removed.
    fn capture_group(&mut self, start: u32) -> u32 {
        let color = self.at(start);
        let mut stack = vec![start];
        self.set(start, EMPTY);
        let mut removed = 1;
        while let Some(i) = stack.pop() {
            for n in self.neighbors(i).collect::<Vec<_>>() {
                if self.at(n) == color {
                    self.set(n, EMPTY);
                    removed += 1;
                    stack.push(n);
                }
            }
        }
        removed
    }

    /// Plays `player` at `i` (must be empty): places the stone, captures
    /// dead enemy groups, and reports stones captured. Suicide moves
    /// capture the mover's own group (legal in this teaching variant,
    /// heavily penalised by the evaluation).
    fn play(&mut self, i: u32, player: u32, stamp: &mut u32) -> u32 {
        debug_assert_eq!(self.at(i), EMPTY);
        self.mix_key(i, player);
        self.set(i, player);
        let enemy = 3 - player;
        let mut captured = 0;
        for n in self.neighbors(i).collect::<Vec<_>>() {
            if self.at(n) == enemy {
                *stamp += 1;
                let (libs, _) = self.liberties(n, *stamp);
                if libs == 0 {
                    captured += self.capture_group(n);
                }
            }
        }
        if captured == 0 {
            *stamp += 1;
            let (libs, _) = self.liberties(i, *stamp);
            if libs == 0 {
                captured = 0;
                self.capture_group(i);
            }
        }
        captured
    }

    /// Static evaluation for `player`: capture difference dominates,
    /// then total liberties.
    fn evaluate(&mut self, player: u32, stamp: &mut u32) -> i32 {
        let cells = self.size * self.size;
        let mut score = 0i32;
        let mut i = 0;
        while i < cells {
            let v = self.at(i);
            if v != EMPTY && self.bus.load_idx(self.visited, i) != *stamp {
                // liberties() marks with its own stamp; use fresh ones.
                *stamp += 1;
                let (libs, stones) = self.liberties(i, *stamp);
                let worth = libs as i32 + 2 * stones as i32;
                if v == player {
                    score += worth;
                } else {
                    score -= worth;
                }
            }
            i += 1;
        }
        score
    }

    /// Generates candidate moves: empty points adjacent to any stone
    /// (plus the center early), ordered by the history table.
    fn candidates(&mut self, cap: usize) -> Vec<u32> {
        let cells = self.size * self.size;
        let mut moves = Vec::new();
        for i in 0..cells {
            if self.at(i) != EMPTY {
                continue;
            }
            let near = self
                .neighbors(i)
                .any(|n| self.bus.load_idx(self.board, n) != EMPTY);
            if near {
                let h = self.bus.load_idx(self.history, i);
                moves.push((h, i));
            }
        }
        if moves.is_empty() {
            let center = self.idx(self.size / 2, self.size / 2);
            return vec![center];
        }
        moves.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        moves.truncate(cap);
        moves.into_iter().map(|(_, i)| i).collect()
    }

    /// Alpha-beta search; board state is saved/restored through a
    /// simulated stack frame per node, exactly how game programs burn
    /// memory bandwidth.
    fn search(
        &mut self,
        player: u32,
        depth: u32,
        mut alpha: i32,
        beta: i32,
        width: usize,
        stamp: &mut u32,
    ) -> (i32, Option<u32>) {
        self.nodes += 1;
        if depth == 0 {
            return (self.evaluate(player, stamp), None);
        }
        if let Some(score) = self.tt_probe(depth) {
            return (score, None);
        }
        let moves = self.candidates(width);
        if moves.is_empty() {
            return (self.evaluate(player, stamp), None);
        }
        let cells = self.size * self.size;
        let mut best = (i32::MIN, None);
        for mv in moves {
            // Save the board into a stack frame (the node's undo state).
            let frame = self.bus.push_frame(cells);
            self.bus.copy_words(self.board, frame, cells);
            let saved_key = self.key;
            let captured = self.play(mv, player, stamp);
            let (mut score, _) = self.search(3 - player, depth - 1, -beta, -alpha, width, stamp);
            score = -score + captured as i32 * 16;
            // Restore.
            self.bus.copy_words(frame, self.board, cells);
            self.key = saved_key;
            self.bus.pop_frame();
            if score > best.0 {
                best = (score, Some(mv));
            }
            alpha = alpha.max(score);
            if alpha >= beta {
                self.tt_store(depth, score);
                // History credit for the cutoff move.
                let h = self.bus.load_idx(self.history, mv);
                self.bus.store_idx(self.history, mv, h + depth);
                break;
            }
        }
        best
    }
}

/// The 099.go stand-in: plays a full game of capture go against itself.
#[derive(Debug)]
pub struct GoLike {
    input: InputSize,
    seed: u64,
    /// (black captures, white captures, search nodes) after the run.
    pub last_result: Option<(u32, u32, u64)>,
}

impl GoLike {
    /// Creates the workload.
    pub fn new(input: InputSize, seed: u64) -> Self {
        GoLike {
            input,
            seed,
            last_result: None,
        }
    }
}

impl Workload for GoLike {
    fn name(&self) -> &'static str {
        "go"
    }

    fn mirrors(&self) -> &'static str {
        "099.go"
    }

    fn run(&mut self, bus: &mut dyn Bus) {
        let (size, depth, width, moves) = match self.input {
            InputSize::Test => (9u32, 1u32, 8usize, 14u32),
            InputSize::Train => (11, 2, 9, 30),
            InputSize::Ref => (13, 2, 11, 46),
        };
        let mut rng = Rng::new(self.seed);
        let tt_entries = match self.input {
            InputSize::Test => 8_192u32,
            InputSize::Train => 32_768,
            InputSize::Ref => 65_536,
        };
        let mut game = Game::new(bus, size, tt_entries);
        let mut stamp = 0u32;
        // A couple of random opening stones so games differ per seed.
        for player in [1u32, 2] {
            let cells = size * size;
            let mut i = rng.below(cells);
            while game.at(i) != EMPTY {
                i = rng.below(cells);
            }
            game.set(i, player);
        }
        let mut player = 1u32;
        for _ in 0..moves {
            let (_score, best) =
                game.search(player, depth, i32::MIN + 1, i32::MAX - 1, width, &mut stamp);
            let Some(mv) = best else { break };
            let captured = game.play(mv, player, &mut stamp);
            game.captures[(player - 1) as usize] += captured;
            player = 3 - player;
        }
        self.last_result = Some((game.captures[0], game.captures[1], game.nodes));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fvl_mem::{CountingSink, NullSink, TracedMemory};

    fn with_game<R>(size: u32, f: impl FnOnce(&mut Game<'_>) -> R) -> R {
        let mut sink = NullSink;
        let mut mem = TracedMemory::new(&mut sink);
        let mut game = Game::new(&mut mem, size, 1024);
        f(&mut game)
    }

    #[test]
    fn single_stone_liberties() {
        with_game(5, |g| {
            let mut stamp = 0;
            let center = g.idx(2, 2);
            g.play(center, 1, &mut stamp);
            stamp += 1;
            let (libs, stones) = g.liberties(center, stamp);
            assert_eq!((libs, stones), (4, 1));
            // Corner stone has 2 liberties.
            let corner = g.idx(0, 0);
            g.play(corner, 2, &mut stamp);
            stamp += 1;
            let (libs, stones) = g.liberties(corner, stamp);
            assert_eq!((libs, stones), (2, 1));
        });
    }

    #[test]
    fn surrounded_stone_is_captured() {
        with_game(5, |g| {
            let mut stamp = 0;
            let c = g.idx(2, 2);
            g.play(c, 2, &mut stamp);
            // Black surrounds white on all four sides.
            for (r, cc) in [(1, 2), (3, 2), (2, 1)] {
                let captured = g.play(g.idx(r, cc), 1, &mut stamp);
                assert_eq!(captured, 0);
            }
            let captured = g.play(g.idx(2, 3), 1, &mut stamp);
            assert_eq!(captured, 1, "white stone captured");
            assert_eq!(g.at(c), EMPTY, "stone removed from board");
        });
    }

    #[test]
    fn group_capture_removes_whole_group() {
        with_game(5, |g| {
            let mut stamp = 0;
            // White pair at (2,2),(2,3).
            g.play(g.idx(2, 2), 2, &mut stamp);
            g.play(g.idx(2, 3), 2, &mut stamp);
            // Black surrounds the pair (6 liberties).
            let ring = [(1, 2), (1, 3), (3, 2), (3, 3), (2, 1)];
            for (r, c) in ring {
                assert_eq!(g.play(g.idx(r, c), 1, &mut stamp), 0);
            }
            let captured = g.play(g.idx(2, 4), 1, &mut stamp);
            assert_eq!(captured, 2);
            assert_eq!(g.at(g.idx(2, 2)), EMPTY);
            assert_eq!(g.at(g.idx(2, 3)), EMPTY);
        });
    }

    #[test]
    fn search_prefers_capturing_move() {
        with_game(5, |g| {
            let mut stamp = 0;
            // White stone with one liberty at (2,3); black to move.
            g.set(g.idx(2, 2), 2);
            g.set(g.idx(1, 2), 1);
            g.set(g.idx(3, 2), 1);
            g.set(g.idx(2, 1), 1);
            let (_s, best) = g.search(1, 1, i32::MIN + 1, i32::MAX - 1, 16, &mut stamp);
            assert_eq!(best, Some(g.idx(2, 3)), "search finds the capture");
        });
    }

    #[test]
    fn full_game_is_deterministic_and_busy() {
        let run = |seed| {
            let mut sink = CountingSink::default();
            let mut w = GoLike::new(InputSize::Test, seed);
            {
                let mut mem = TracedMemory::new(&mut sink);
                w.run(&mut mem);
                mem.finish();
            }
            (w.last_result.unwrap(), sink.accesses())
        };
        let ((b1, w1, n1), acc1) = run(3);
        let ((b2, w2, n2), acc2) = run(3);
        assert_eq!((b1, w1, n1, acc1), (b2, w2, n2, acc2));
        assert!(n1 > 50, "search explored nodes: {n1}");
        assert!(acc1 > 50_000, "accesses: {acc1}");
    }
}
