//! `VortexLike` — an in-memory object database, standing in for
//! 147.vortex (the OODB benchmark).
//!
//! Fixed-schema records (type and status enums, flag words, packed
//! names, link pointers) are stored in a traced heap, indexed by a
//! chained hash index whose bucket array is mostly null, and driven by a
//! transaction mix of inserts, lookups, status updates, deletes, and
//! full-table report scans — vortex's workload shape. Enums, zeros, and
//! recurring flag words dominate the value stream.

use crate::{InputSize, Rng, Workload};
use fvl_mem::{Addr, Bus, BusExt};

/// Record layout (16 words).
const R_ID: u32 = 0;
const R_TYPE: u32 = 1; // 1..=4
const R_STATUS: u32 = 2; // 0=active, 1=pending, 2=archived
const R_FLAGS: u32 = 3;
const R_NAME: u32 = 4; // 4 words, packed chars
const R_BALANCE: u32 = 8;
const R_NEXT: u32 = 9; // hash chain link
const R_PARENT: u32 = 10; // object graph link (often null)
const R_CHILD: u32 = 11;
const R_RESERVED: u32 = 12; // 12..16 zero
const RECORD_WORDS: u32 = 16;

struct Database<'b> {
    bus: &'b mut dyn Bus,
    buckets: Addr,
    bucket_count: u32,
    /// Status directory: one word per id slot (0 = unused, else
    /// status+1). Reports scan this dense, small-valued table — an OODB
    /// bitmap index.
    dir: Addr,
    dir_slots: u32,
    records: u32,
    lookups_found: u64,
    lookups_missed: u64,
}

impl<'b> Database<'b> {
    fn new(bus: &'b mut dyn Bus, bucket_count: u32, dir_slots: u32) -> Self {
        let buckets = bus.global(bucket_count);
        let dir = bus.global(dir_slots);
        for i in 0..bucket_count {
            bus.store_idx(buckets, i, 0);
        }
        // The directory relies on zero-fresh memory, like calloc.
        Database {
            bus,
            buckets,
            bucket_count,
            dir,
            dir_slots,
            records: 0,
            lookups_found: 0,
            lookups_missed: 0,
        }
    }

    fn dir_set(&mut self, id: u32, status_plus1: u32) {
        let slot = id % self.dir_slots;
        self.bus.store_idx(self.dir, slot, status_plus1);
    }

    fn slot_of(&self, id: u32) -> u32 {
        id.wrapping_mul(2654435761) % self.bucket_count
    }

    fn insert(&mut self, id: u32, ty: u32, name_seed: u32) -> Addr {
        let rec = self.bus.alloc(RECORD_WORDS);
        self.bus.store_idx(rec, R_ID, id);
        self.bus.store_idx(rec, R_TYPE, ty);
        self.bus.store_idx(rec, R_STATUS, 0);
        self.bus.store_idx(rec, R_FLAGS, 0x0001_0001);
        // Packed 16-char name: "obj" + digits, space padded.
        let name = format!("obj{name_seed:05}");
        let mut packed = [0u32; 4];
        for (w, slot) in packed.iter_mut().enumerate() {
            let mut v = 0u32;
            for b in 0..4 {
                let byte = name.as_bytes().get(w * 4 + b).copied().unwrap_or(b' ');
                v = (v << 8) | byte as u32;
            }
            *slot = v;
        }
        for (i, &w) in packed.iter().enumerate() {
            self.bus.store_idx(rec, R_NAME + i as u32, w);
        }
        self.bus.store_idx(rec, R_BALANCE, 100);
        let slot = self.slot_of(id);
        let head = self.bus.load_idx(self.buckets, slot);
        self.bus.store_idx(rec, R_NEXT, head);
        self.bus.store_idx(rec, R_PARENT, 0);
        self.bus.store_idx(rec, R_CHILD, 0);
        for i in R_RESERVED..RECORD_WORDS {
            self.bus.store_idx(rec, i, 0);
        }
        self.bus.store_idx(self.buckets, slot, rec);
        self.dir_set(id, 1);
        self.records += 1;
        rec
    }

    fn find(&mut self, id: u32) -> Option<Addr> {
        let slot = self.slot_of(id);
        let mut rec = self.bus.load_idx(self.buckets, slot);
        while rec != 0 {
            if self.bus.load_idx(rec, R_ID) == id {
                self.lookups_found += 1;
                return Some(rec);
            }
            rec = self.bus.load_idx(rec, R_NEXT);
        }
        self.lookups_missed += 1;
        None
    }

    /// Unlinks and frees the record with `id`; returns whether it
    /// existed.
    fn delete(&mut self, id: u32) -> bool {
        let slot = self.slot_of(id);
        let mut prev: Option<Addr> = None;
        let mut rec = self.bus.load_idx(self.buckets, slot);
        while rec != 0 {
            let next = self.bus.load_idx(rec, R_NEXT);
            if self.bus.load_idx(rec, R_ID) == id {
                match prev {
                    Some(p) => self.bus.store_idx(p, R_NEXT, next),
                    None => self.bus.store_idx(self.buckets, slot, next),
                }
                self.bus.free(rec);
                self.dir_set(id, 0);
                self.records -= 1;
                return true;
            }
            prev = Some(rec);
            rec = next;
        }
        false
    }

    /// Status transition: active -> pending -> archived -> active.
    fn touch_status(&mut self, rec: Addr) {
        let s = self.bus.load_idx(rec, R_STATUS);
        let ns = (s + 1) % 3;
        self.bus.store_idx(rec, R_STATUS, ns);
        let id = self.bus.load_idx(rec, R_ID);
        self.dir_set(id, ns + 1);
        let b = self.bus.load_idx(rec, R_BALANCE);
        self.bus.store_idx(rec, R_BALANCE, b.wrapping_add(1));
    }

    /// Report scan over the status directory (dense index scan).
    fn report(&mut self) -> [u32; 3] {
        let mut tally = [0u32; 3];
        for slot in 0..self.dir_slots {
            let v = self.bus.load_idx(self.dir, slot);
            if v != 0 {
                tally[(v - 1) as usize] += 1;
            }
        }
        tally
    }

    /// Deep audit: walks every chain (used rarely; chain integrity).
    fn audit(&mut self) -> u32 {
        let mut n = 0;
        for slot in 0..self.bucket_count {
            let mut rec = self.bus.load_idx(self.buckets, slot);
            while rec != 0 {
                n += 1;
                rec = self.bus.load_idx(rec, R_NEXT);
            }
        }
        n
    }
}

/// The 147.vortex stand-in.
#[derive(Debug)]
pub struct VortexLike {
    input: InputSize,
    seed: u64,
    /// (live records, found lookups, missed lookups) after the run.
    pub last_result: Option<(u32, u64, u64)>,
}

impl VortexLike {
    /// Creates the workload.
    pub fn new(input: InputSize, seed: u64) -> Self {
        VortexLike {
            input,
            seed,
            last_result: None,
        }
    }
}

impl Workload for VortexLike {
    fn name(&self) -> &'static str {
        "vortex"
    }

    fn mirrors(&self) -> &'static str {
        "147.vortex"
    }

    fn run(&mut self, bus: &mut dyn Bus) {
        let (initial, transactions, buckets, dir_slots) = match self.input {
            InputSize::Test => (1_200u32, 15_000u32, 1_024u32, 4_096u32),
            InputSize::Train => (3_000, 80_000, 2_048, 8_192),
            InputSize::Ref => (5_000, 200_000, 4_096, 16_384),
        };
        let mut rng = Rng::new(self.seed.wrapping_add(0xdb));
        let mut db = Database::new(bus, buckets, dir_slots);
        let mut next_id = 1u32;
        // Load phase.
        for _ in 0..initial {
            db.insert(next_id, 1 + rng.below(4), next_id);
            next_id += 1;
        }
        // Transaction mix: 70% lookup+update (Zipf-skewed towards a hot
        // set, like real OLTP), 8% insert, 8% delete, 14% lookup-miss;
        // periodic report scans.
        let report_every = transactions / 12;
        let mut reports = 0u32;
        for t in 0..transactions {
            let dice = rng.below(100);
            if dice < 70 {
                let id = if rng.chance(0.85) {
                    // Hot set: the oldest surviving ids (fits on chip).
                    1 + rng.below(128.min(next_id))
                } else {
                    1 + rng.below(next_id)
                };
                if let Some(rec) = db.find(id) {
                    db.touch_status(rec);
                }
            } else if dice < 78 {
                db.insert(next_id, 1 + rng.below(4), next_id);
                next_id += 1;
            } else if dice < 86 {
                // Deletes target recent ids, as OLTP churn does.
                let horizon = 600.min(next_id);
                let id = next_id - rng.below(horizon);
                db.delete(id);
            } else {
                // Guaranteed miss: ids beyond the horizon.
                let _ = db.find(next_id + 1000 + rng.below(1000));
            }
            if report_every > 0 && t % report_every == 0 {
                let tally = db.report();
                reports += 1;
                debug_assert_eq!(tally.iter().sum::<u32>(), db.records);
                if reports.is_multiple_of(8) {
                    debug_assert_eq!(db.audit(), db.records);
                }
            }
        }
        assert!(reports > 0);
        self.last_result = Some((db.records, db.lookups_found, db.lookups_missed));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fvl_mem::{CountingSink, NullSink, TracedMemory};

    fn with_db<R>(buckets: u32, f: impl FnOnce(&mut Database<'_>) -> R) -> R {
        let mut sink = NullSink;
        let mut mem = TracedMemory::new(&mut sink);
        let mut db = Database::new(&mut mem, buckets, 4096);
        f(&mut db)
    }

    #[test]
    fn insert_find_round_trip() {
        with_db(16, |db| {
            db.insert(42, 2, 42);
            let rec = db.find(42).expect("found");
            assert_eq!(db.bus.load_idx(rec, R_ID), 42);
            assert_eq!(db.bus.load_idx(rec, R_TYPE), 2);
            assert_eq!(db.bus.load_idx(rec, R_STATUS), 0);
            assert!(db.find(43).is_none());
        });
    }

    #[test]
    fn name_is_packed_padded_ascii() {
        with_db(16, |db| {
            let rec = db.insert(7, 1, 7);
            let w0 = db.bus.load_idx(rec, R_NAME);
            // "obj0" big-endian.
            assert_eq!(w0, u32::from_be_bytes(*b"obj0"));
            let w2 = db.bus.load_idx(rec, R_NAME + 2);
            assert_eq!(w2, u32::from_be_bytes(*b"    "), "space padding");
        });
    }

    #[test]
    fn delete_unlinks_from_chain() {
        with_db(1, |db| {
            // Single bucket: 3-record chain.
            db.insert(1, 1, 1);
            db.insert(2, 1, 2);
            db.insert(3, 1, 3);
            assert!(db.delete(2), "middle");
            assert!(db.find(1).is_some());
            assert!(db.find(2).is_none());
            assert!(db.find(3).is_some());
            assert!(db.delete(3), "head");
            assert!(db.delete(1), "tail");
            assert_eq!(db.records, 0);
            assert!(!db.delete(1), "double delete is a no-op");
        });
    }

    #[test]
    fn status_cycles_and_report_tallies() {
        with_db(8, |db| {
            for id in 1..=6 {
                db.insert(id, 1, id);
            }
            for id in 1..=4 {
                let rec = db.find(id).unwrap();
                db.touch_status(rec); // -> pending
            }
            for id in 1..=2 {
                let rec = db.find(id).unwrap();
                db.touch_status(rec); // -> archived
            }
            let tally = db.report();
            assert_eq!(tally, [2, 2, 2]);
        });
    }

    #[test]
    fn full_workload_is_consistent() {
        let mut sink = CountingSink::default();
        let mut w = VortexLike::new(InputSize::Test, 3);
        {
            let mut mem = TracedMemory::new(&mut sink);
            w.run(&mut mem);
            mem.finish();
        }
        let (records, found, missed) = w.last_result.unwrap();
        assert!(records > 500, "db retains records: {records}");
        assert!(found > 1000);
        assert!(missed > 500, "horizon lookups miss: {missed}");
        assert!(sink.accesses() > 100_000);
    }
}
