//! Synthetic SPEC95-like workloads.
//!
//! The paper's measurements are taken over SPECint95/SPECfp95 binaries
//! running on *reference* inputs. Those binaries (and an instrumented
//! machine to trace them) are not available here, so this crate provides
//! fourteen genuine small programs — an interpreter, a CPU simulator, a
//! compiler, a database, compressors, numeric kernels — each engineered
//! so its *memory value behavior* mirrors its SPEC namesake (see
//! `DESIGN.md` for the substitution argument). Every workload runs
//! against an [`fvl_mem::Bus`], so each of its loads and stores is a
//! traced word access.
//!
//! # Example
//!
//! ```
//! use fvl_mem::{CountingSink, TracedMemory};
//! use fvl_workloads::{InputSize, LiLike, Workload};
//!
//! let mut sink = CountingSink::default();
//! let mut mem = TracedMemory::new(&mut sink);
//! LiLike::new(InputSize::Test, 1).run(&mut mem);
//! mem.finish();
//! assert!(sink.accesses() > 10_000);
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod compiler;
mod compress;
mod cpu;
mod fp;
mod fp2;
mod go;
mod ijpeg;
mod lisp;
mod perl;
mod vortex;

pub use compiler::GccLike;
pub use compress::CompressLike;
pub use cpu::M88ksimLike;
pub use fp::{ApplULike, Hydro2dLike, SwimLike, TomcatvLike};
pub use fp2::{MgridLike, Wave5Like};
pub use go::GoLike;
pub use ijpeg::IjpegLike;
pub use lisp::LiLike;
pub use perl::PerlLike;
pub use vortex::VortexLike;

use fvl_mem::Bus;
use std::fmt;

/// Problem-size class, mirroring SPEC's `test` / `train` / `reference`
/// input sets.
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug)]
pub enum InputSize {
    /// Smallest input: seconds of simulation, used by unit tests and
    /// Criterion benches.
    Test,
    /// Medium input.
    Train,
    /// Full-size input used by the headline experiments.
    Ref,
}

impl fmt::Display for InputSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            InputSize::Test => "test",
            InputSize::Train => "train",
            InputSize::Ref => "ref",
        })
    }
}

/// A benchmark program that can be executed against a memory [`Bus`].
pub trait Workload {
    /// Short machine-friendly name (e.g. `"li"`).
    fn name(&self) -> &'static str;

    /// The SPEC95 benchmark this workload stands in for.
    fn mirrors(&self) -> &'static str;

    /// Executes the program, issuing every data access through `bus`.
    ///
    /// Workloads are single-shot: create a fresh value per run.
    fn run(&mut self, bus: &mut dyn Bus);
}

impl fmt::Debug for dyn Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Workload({})", self.name())
    }
}

/// The six SPECint95 benchmarks the paper finds frequent value locality
/// in, in the paper's order: go, m88ksim, gcc, li, perl, vortex.
pub fn fv_six(input: InputSize, seed: u64) -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(GoLike::new(input, seed)),
        Box::new(M88ksimLike::new(input, seed)),
        Box::new(GccLike::new(input, seed)),
        Box::new(LiLike::new(input, seed)),
        Box::new(PerlLike::new(input, seed)),
        Box::new(VortexLike::new(input, seed)),
    ]
}

/// The two SPECint95 benchmarks *without* frequent value locality:
/// compress and ijpeg.
pub fn non_fv_two(input: InputSize, seed: u64) -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(CompressLike::new(input, seed)),
        Box::new(IjpegLike::new(input, seed)),
    ]
}

/// All eight SPECint95-like workloads in the paper's order.
pub fn all_int(input: InputSize, seed: u64) -> Vec<Box<dyn Workload>> {
    let mut v = fv_six(input, seed);
    v.extend(non_fv_two(input, seed));
    v
}

/// The six SPECfp95-like workloads (Figure 2).
pub fn all_fp(input: InputSize, seed: u64) -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(TomcatvLike::new(input, seed)),
        Box::new(SwimLike::new(input, seed)),
        Box::new(Hydro2dLike::new(input, seed)),
        Box::new(MgridLike::new(input, seed)),
        Box::new(ApplULike::new(input, seed)),
        Box::new(Wave5Like::new(input, seed)),
    ]
}

/// Looks a workload up by its short name.
pub fn by_name(name: &str, input: InputSize, seed: u64) -> Option<Box<dyn Workload>> {
    let w: Box<dyn Workload> = match name {
        "go" => Box::new(GoLike::new(input, seed)),
        "m88ksim" => Box::new(M88ksimLike::new(input, seed)),
        "gcc" => Box::new(GccLike::new(input, seed)),
        "li" => Box::new(LiLike::new(input, seed)),
        "perl" => Box::new(PerlLike::new(input, seed)),
        "vortex" => Box::new(VortexLike::new(input, seed)),
        "compress" => Box::new(CompressLike::new(input, seed)),
        "ijpeg" => Box::new(IjpegLike::new(input, seed)),
        "tomcatv" => Box::new(TomcatvLike::new(input, seed)),
        "swim" => Box::new(SwimLike::new(input, seed)),
        "hydro2d" => Box::new(Hydro2dLike::new(input, seed)),
        "mgrid" => Box::new(MgridLike::new(input, seed)),
        "applu" => Box::new(ApplULike::new(input, seed)),
        "wave5" => Box::new(Wave5Like::new(input, seed)),
        _ => return None,
    };
    Some(w)
}

/// Deterministic xorshift64* PRNG used by all workloads, so runs are
/// reproducible regardless of external crate versions.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Seeds the generator; a zero seed is remapped to a fixed constant.
    pub fn new(seed: u64) -> Self {
        Rng {
            state: if seed == 0 {
                0x9e37_79b9_7f4a_7c15
            } else {
                seed
            },
        }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Next 32-bit value.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn below(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "bound must be positive");
        (self.next_u64() % bound as u64) as u32
    }

    /// Uniform f64 in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fvl_mem::{CountingSink, TracedMemory};

    #[test]
    fn registry_names_round_trip() {
        for w in all_int(InputSize::Test, 1)
            .iter()
            .chain(all_fp(InputSize::Test, 1).iter())
        {
            let looked = by_name(w.name(), InputSize::Test, 1).expect("by_name finds it");
            assert_eq!(looked.name(), w.name());
            assert!(!w.mirrors().is_empty());
        }
        assert!(by_name("nope", InputSize::Test, 1).is_none());
    }

    #[test]
    fn fv_six_is_the_papers_order() {
        let names: Vec<_> = fv_six(InputSize::Test, 1)
            .iter()
            .map(|w| w.name())
            .collect();
        assert_eq!(names, vec!["go", "m88ksim", "gcc", "li", "perl", "vortex"]);
    }

    #[test]
    fn rng_is_deterministic_and_bounded() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        for _ in 0..1000 {
            assert!(a.below(17) < 17);
            let u = a.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
        let mut c = Rng::new(0);
        let _ = c.next_u64(); // zero seed is remapped, not stuck
        assert_ne!(c.state, 0);
    }

    #[test]
    fn every_workload_runs_and_touches_memory() {
        for mut w in all_int(InputSize::Test, 7) {
            let mut sink = CountingSink::default();
            {
                let mut mem = TracedMemory::new(&mut sink);
                w.run(&mut mem);
                mem.finish();
            }
            assert!(
                sink.accesses() > 5_000,
                "{} produced only {} accesses",
                w.name(),
                sink.accesses()
            );
        }
        for mut w in all_fp(InputSize::Test, 7) {
            let mut sink = CountingSink::default();
            {
                let mut mem = TracedMemory::new(&mut sink);
                w.run(&mut mem);
                mem.finish();
            }
            assert!(sink.accesses() > 5_000, "{}", w.name());
        }
    }

    #[test]
    fn workloads_are_deterministic() {
        for name in ["li", "go", "compress"] {
            let run = |seed| {
                let mut sink = CountingSink::default();
                let mut w = by_name(name, InputSize::Test, seed).unwrap();
                {
                    let mut mem = TracedMemory::new(&mut sink);
                    w.run(&mut mem);
                    mem.finish();
                }
                sink.accesses()
            };
            assert_eq!(run(3), run(3), "{name} not deterministic");
        }
    }
}
