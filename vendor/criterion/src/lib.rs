//! Offline benchmarking shim, API-compatible with the subset of
//! [criterion](https://crates.io/crates/criterion) this workspace uses.
//!
//! The build environment has no network access, so the real crate
//! cannot be downloaded; the workspace `[patch.crates-io]` table points
//! the `criterion` dependency here instead. The shim runs each bench
//! closure through a short warm-up followed by timed samples and prints
//! median/mean wall-clock time per iteration (plus throughput when
//! configured). No statistical analysis, plots, or baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
#[inline]
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Throughput annotation for a benchmark group.
#[derive(Copy, Clone, Debug)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// A two-part benchmark identifier, rendered as `function/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Drives one benchmark's measurement loop.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_count: usize,
}

impl Bencher {
    /// Times `routine`, keeping its return value live via `black_box`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until ~50ms elapsed to size the sample batches.
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_start.elapsed() < Duration::from_millis(50) {
            black_box(routine());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed().as_nanos() as u64 / warmup_iters.max(1);
        // Aim for ~10ms per sample, at least one iteration.
        self.iters_per_sample = (10_000_000 / per_iter.max(1)).clamp(1, 1_000_000);
        self.samples.clear();
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    fn per_iter_nanos(&self) -> Vec<f64> {
        self.samples
            .iter()
            .map(|d| d.as_nanos() as f64 / self.iters_per_sample.max(1) as f64)
            .collect()
    }
}

fn format_nanos(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    sample_count: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(2);
        self
    }

    /// Annotates per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark and prints its timing line.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_count: self.sample_count,
        };
        f(&mut bencher);
        let mut per_iter = bencher.per_iter_nanos();
        if per_iter.is_empty() {
            println!("{}/{}: no samples", self.name, id.id);
            return self;
        }
        per_iter.sort_by(f64::total_cmp);
        let median = per_iter[per_iter.len() / 2];
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let throughput = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  ({:.2} Melem/s)", n as f64 / median * 1e3)
            }
            Some(Throughput::Bytes(n)) => {
                format!("  ({:.2} MB/s)", n as f64 / median * 1e3)
            }
            None => String::new(),
        };
        println!(
            "{}/{}: median {} mean {} ({} samples x {} iters){}",
            self.name,
            id.id,
            format_nanos(median),
            format_nanos(mean),
            per_iter.len(),
            bencher.iters_per_sample,
            throughput
        );
        self
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            sample_count: 10,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a group function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_and_prints() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("test");
        group.sample_size(3).throughput(Throughput::Elements(4));
        let mut ran = 0u64;
        group.bench_function(BenchmarkId::new("noop", 1), |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn format_covers_magnitudes() {
        assert!(format_nanos(5.0).ends_with("ns"));
        assert!(format_nanos(5e3).ends_with("us"));
        assert!(format_nanos(5e6).ends_with("ms"));
        assert!(format_nanos(5e9).ends_with(" s"));
    }
}
