//! Offline property-testing shim, API-compatible with the subset of
//! [proptest](https://crates.io/crates/proptest) this workspace uses.
//!
//! The build environment has no network access, so the real crate
//! cannot be downloaded; the workspace `[patch.crates-io]` table points
//! the `proptest` dependency here instead. The shim is a genuine (if
//! small) property-testing engine: strategies generate pseudo-random
//! values from a deterministic per-test RNG and every `proptest!` test
//! runs `ProptestConfig::cases` cases. There is no shrinking — a
//! failing case panics with the generated inputs left to inspect via
//! the assertion message.
//!
//! Supported surface:
//!
//! * `proptest! { ... }` with optional `#![proptest_config(...)]`
//! * integer range strategies (`0u32..100`, `1u32..=7`), `any::<T>()`
//! * tuple strategies, `prop_oneof!`, `.prop_map`, `.prop_filter_map`
//! * `prop::collection::vec`, `prop::collection::hash_set`,
//!   `prop::option::of`
//! * `prop_assert!`, `prop_assert_eq!`, `ProptestConfig::with_cases`

use std::collections::HashSet;
use std::hash::{Hash, Hasher};
use std::ops::{Range, RangeInclusive};

/// Per-test deterministic RNG (xorshift64*), seeded from the test name
/// so every test draws an independent, reproducible stream. Set
/// `PROPTEST_SEED` to vary the stream across runs.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the RNG for one named test.
    pub fn for_test(name: &str) -> Self {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        name.hash(&mut h);
        let env = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(0x9e37_79b9_7f4a_7c15);
        let seed = h.finish() ^ env;
        TestRng {
            state: if seed == 0 {
                0x2545_f491_4f6c_dd1d
            } else {
                seed
            },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below() needs a positive bound");
        self.next_u64() % bound
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Number of cases each property runs (default 256, like proptest).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(256);
        ProptestConfig { cases }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of pseudo-random values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps only values `f` maps to `Some`, retrying otherwise.
    fn prop_filter_map<O, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            inner: self,
            whence,
            f,
        }
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter_map`].
#[derive(Clone, Debug)]
pub struct FilterMap<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        for _ in 0..10_000 {
            if let Some(v) = (self.f)(self.inner.generate(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map rejected 10000 candidates: {}", self.whence);
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u64) - (start as u64) + 1;
                start + rng.below(span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, usize);

/// Produces any value of a supported primitive type.
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// `any::<T>()` — the full domain of `T`.
pub fn any<T>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<u8> {
    type Value = u8;
    fn generate(&self, rng: &mut TestRng) -> u8 {
        rng.next_u64() as u8
    }
}

impl Strategy for Any<u32> {
    type Value = u32;
    fn generate(&self, rng: &mut TestRng) -> u32 {
        // Bias towards structured values (small, near-max) half the
        // time, like proptest's edge-weighted generators.
        match rng.below(4) {
            0 => rng.below(16) as u32,
            1 => u32::MAX - rng.below(16) as u32,
            _ => rng.next_u64() as u32,
        }
    }
}

impl Strategy for Any<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D));

/// Uniformly picks one of several boxed strategies (see [`prop_oneof!`]).
pub struct OneOf<T> {
    /// The candidate strategies.
    pub arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.arms.is_empty(), "prop_oneof! needs at least one arm");
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng)
    }
}

/// Collection and option strategies (`prop::collection::vec`, ...).
pub mod strategies {
    use super::*;

    /// A size specification: an exact `usize` or a `Range<usize>`.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo) as u64) as usize
        }
    }

    /// `Vec` of values from `element`, with a size drawn from `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `HashSet` of values from `element`; insertion retries until the
    /// sampled size is reached (bounded, so sparse domains terminate).
    #[derive(Clone, Debug)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for HashSetStrategy<S>
    where
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let n = self.size.sample(rng);
            let mut set = HashSet::new();
            let mut attempts = 0usize;
            while set.len() < n && attempts < n.saturating_mul(100) + 100 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            assert!(
                self.size.lo == 0 || !set.is_empty(),
                "hash_set strategy could not reach its minimum size"
            );
            set
        }
    }

    /// `Option` of values from `inner` (80% `Some`).
    #[derive(Clone, Debug)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.unit() < 0.8 {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }

    /// Builds a [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Builds a [`HashSetStrategy`].
    pub fn hash_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S> {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// Builds an [`OptionStrategy`].
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// The `prop::` namespace (`prop::collection`, `prop::option`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategies::{hash_set, vec};
    }
    /// Option strategies.
    pub mod option {
        pub use crate::strategies::of;
    }
}

/// Everything a test file needs.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Uniformly picks one of the listed strategies per generated value.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        let arms: Vec<Box<dyn $crate::Strategy<Value = _>>> = vec![$(Box::new($strategy)),+];
        $crate::OneOf { arms }
    }};
}

/// Declares property tests: each `fn name(pat in strategy, ...) { .. }`
/// becomes a `#[test]` running `ProptestConfig::cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr); ) => {};
    (($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strategy:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for _ in 0..config.cases {
                $(let $pat = $crate::Strategy::generate(&($strategy), &mut rng);)*
                $body
            }
        }
        $crate::__proptest_items! { ($config); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::for_test("ranges");
        for _ in 0..1000 {
            let v = (1u32..=7).generate(&mut rng);
            assert!((1..=7).contains(&v));
            let w = (0u8..128).generate(&mut rng);
            assert!(w < 128);
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = crate::TestRng::for_test("x");
        let mut b = crate::TestRng::for_test("x");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The macro plumbing itself round-trips values.
        #[test]
        fn macro_generates_cases(
            v in prop::collection::vec((0u32..100, any::<bool>()), 1..20),
            flag in prop::option::of(0u32..4),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for (n, _) in &v {
                prop_assert!(*n < 100);
            }
            if let Some(f) = flag {
                prop_assert!(f < 4);
            }
        }

        /// prop_oneof and prop_map compose.
        #[test]
        fn oneof_picks_every_arm(
            choices in prop::collection::vec(
                prop_oneof![
                    (0u32..10).prop_map(|v| v * 2),
                    (0u32..10).prop_map(|v| v * 2 + 1),
                ],
                1..50,
            ),
        ) {
            for c in choices {
                prop_assert!(c < 20);
            }
        }
    }
}
